"""Recursive-descent SQL parser: token stream -> unbound AST.

Grammar (roughly):

    select    := SELECT [DISTINCT] item (',' item)*
                 FROM table_ref (',' table_ref | JOIN table_ref ON expr)*
                 [WHERE expr] [GROUP BY column (',' column)*] [HAVING expr]
                 [ORDER BY order_item (',' order_item)*] [LIMIT number] [';']
    expr      := or_expr
    or_expr   := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := NOT not_expr | predicate
    predicate := additive [comparison | BETWEEN | IN]
    additive  := term (('+'|'-') term)*
    term      := factor (('*'|'/') factor)*
    factor    := '-' factor | primary
    primary   := literal | func '(' ... ')' | column | '(' expr ')'
"""

from __future__ import annotations

import datetime

from repro.errors import ParseError
from repro.sql.ast_nodes import (
    AstBetween,
    AstBinary,
    AstColumn,
    AstExpr,
    AstFuncCall,
    AstInList,
    AstJoin,
    AstLiteral,
    AstOrderItem,
    AstSelect,
    AstSelectItem,
    AstTableRef,
    AstUnary,
)
from repro.sql.lexer import Token, TokenType, tokenize

_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_FUNCTION_NAMES = {"sum", "count", "avg", "min", "max", "abs", "year"}


def parse(sql: str) -> AstSelect:
    """Parse one SELECT statement."""
    return _Parser(tokenize(sql)).parse_select()


def parse_date(text: str, position: int = 0) -> int:
    """Convert ``YYYY-MM-DD`` into epoch days (the engine's date encoding)."""
    try:
        parsed = datetime.date.fromisoformat(text)
    except ValueError as exc:
        raise ParseError(f"invalid date literal {text!r}: {exc}", position) from None
    return (parsed - datetime.date(1970, 1, 1)).days


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # ------------------------------------------------------------------ #
    # Token helpers
    # ------------------------------------------------------------------ #
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _accept_symbol(self, symbol: str) -> bool:
        if self._peek().is_symbol(symbol):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise ParseError(f"expected {word.upper()}, found {token.text!r}", token.position)
        return self._advance()

    def _expect_symbol(self, symbol: str) -> Token:
        token = self._peek()
        if not token.is_symbol(symbol):
            raise ParseError(f"expected {symbol!r}, found {token.text!r}", token.position)
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.IDENT:
            raise ParseError(f"expected identifier, found {token.text!r}", token.position)
        return self._advance()

    # ------------------------------------------------------------------ #
    # Statement
    # ------------------------------------------------------------------ #
    def parse_select(self) -> AstSelect:
        self._expect_keyword("select")
        stmt = AstSelect()
        stmt.distinct = self._accept_keyword("distinct")
        stmt.items.append(self._select_item())
        while self._accept_symbol(","):
            stmt.items.append(self._select_item())

        self._expect_keyword("from")
        stmt.tables.append(self._table_ref())
        while True:
            if self._accept_symbol(","):
                stmt.tables.append(self._table_ref())
                continue
            if self._peek().is_keyword("inner") or self._peek().is_keyword("join"):
                self._accept_keyword("inner")
                self._expect_keyword("join")
                table = self._table_ref()
                self._expect_keyword("on")
                condition = self.expr()
                stmt.joins.append(AstJoin(table=table, condition=condition))
                continue
            break

        if self._accept_keyword("where"):
            stmt.where = self.expr()
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            stmt.group_by.append(self._group_column())
            while self._accept_symbol(","):
                stmt.group_by.append(self._group_column())
        if self._accept_keyword("having"):
            stmt.having = self.expr()
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            stmt.order_by.append(self._order_item())
            while self._accept_symbol(","):
                stmt.order_by.append(self._order_item())
        if self._accept_keyword("limit"):
            token = self._peek()
            if token.type is not TokenType.NUMBER:
                raise ParseError("LIMIT requires a number", token.position)
            self._advance()
            stmt.limit = int(float(token.text))
        self._accept_symbol(";")
        tail = self._peek()
        if tail.type is not TokenType.EOF:
            raise ParseError(f"unexpected trailing input {tail.text!r}", tail.position)
        return stmt

    def _select_item(self) -> AstSelectItem:
        expr = self.expr()
        alias: str | None = None
        if self._accept_keyword("as"):
            alias = self._expect_ident().text
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().text
        return AstSelectItem(expr=expr, alias=alias)

    def _table_ref(self) -> AstTableRef:
        name = self._expect_ident().text
        alias: str | None = None
        if self._accept_keyword("as"):
            alias = self._expect_ident().text
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().text
        return AstTableRef(name=name, alias=alias)

    def _group_column(self) -> AstColumn:
        expr = self.expr()
        if not isinstance(expr, AstColumn):
            raise ParseError("GROUP BY supports plain columns only", self._peek().position)
        return expr

    def _order_item(self) -> AstOrderItem:
        expr = self.expr()
        ascending = True
        if self._accept_keyword("asc"):
            ascending = True
        elif self._accept_keyword("desc"):
            ascending = False
        return AstOrderItem(expr=expr, ascending=ascending)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def expr(self) -> AstExpr:
        return self._or_expr()

    def _or_expr(self) -> AstExpr:
        left = self._and_expr()
        while self._accept_keyword("or"):
            left = AstBinary("or", left, self._and_expr())
        return left

    def _and_expr(self) -> AstExpr:
        left = self._not_expr()
        while self._accept_keyword("and"):
            left = AstBinary("and", left, self._not_expr())
        return left

    def _not_expr(self) -> AstExpr:
        if self._accept_keyword("not"):
            return AstUnary("not", self._not_expr())
        return self._predicate()

    def _predicate(self) -> AstExpr:
        left = self._additive()
        token = self._peek()
        if token.type is TokenType.SYMBOL and token.text in _COMPARISONS:
            self._advance()
            op = "<>" if token.text == "!=" else token.text
            return AstBinary(op, left, self._additive())
        negated = False
        if token.is_keyword("not"):
            lookahead = self._peek(1)
            if lookahead.is_keyword("between") or lookahead.is_keyword("in"):
                self._advance()
                negated = True
                token = self._peek()
        if token.is_keyword("between"):
            self._advance()
            low = self._additive()
            self._expect_keyword("and")
            high = self._additive()
            return AstBetween(left, low, high, negated=negated)
        if token.is_keyword("in"):
            self._advance()
            self._expect_symbol("(")
            values = [self._literal()]
            while self._accept_symbol(","):
                values.append(self._literal())
            self._expect_symbol(")")
            return AstInList(left, tuple(values), negated=negated)
        if negated:
            raise ParseError("expected BETWEEN or IN after NOT", token.position)
        return left

    def _additive(self) -> AstExpr:
        left = self._term()
        while True:
            token = self._peek()
            if token.is_symbol("+") or token.is_symbol("-"):
                self._advance()
                left = AstBinary(token.text, left, self._term())
            else:
                return left

    def _term(self) -> AstExpr:
        left = self._factor()
        while True:
            token = self._peek()
            if token.is_symbol("*") or token.is_symbol("/"):
                self._advance()
                left = AstBinary(token.text, left, self._factor())
            else:
                return left

    def _factor(self) -> AstExpr:
        if self._accept_symbol("-"):
            return AstUnary("-", self._factor())
        return self._primary()

    def _primary(self) -> AstExpr:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.text
            value: int | float = float(text) if "." in text else int(text)
            return AstLiteral(value)
        if token.type is TokenType.STRING:
            self._advance()
            return AstLiteral(token.text)
        if token.is_keyword("date"):
            self._advance()
            literal = self._peek()
            if literal.type is not TokenType.STRING:
                raise ParseError("DATE must be followed by a string", literal.position)
            self._advance()
            return AstLiteral(parse_date(literal.text, literal.position), is_date=True)
        if token.is_symbol("("):
            self._advance()
            inner = self.expr()
            self._expect_symbol(")")
            return inner
        if token.type is TokenType.IDENT:
            if token.text in _FUNCTION_NAMES and self._peek(1).is_symbol("("):
                return self._func_call()
            self._advance()
            if self._accept_symbol("."):
                column = self._expect_ident()
                return AstColumn(name=column.text, qualifier=token.text)
            return AstColumn(name=token.text)
        raise ParseError(f"unexpected token {token.text!r}", token.position)

    def _literal(self) -> AstLiteral:
        expr = self._primary()
        if isinstance(expr, AstUnary) and expr.op == "-" and isinstance(expr.operand, AstLiteral):
            value = expr.operand.value
            if isinstance(value, str):
                raise ParseError("cannot negate a string literal", self._peek().position)
            return AstLiteral(-value)
        if not isinstance(expr, AstLiteral):
            raise ParseError("expected a literal value", self._peek().position)
        return expr

    def _func_call(self) -> AstExpr:
        name_token = self._advance()
        name = name_token.text
        self._expect_symbol("(")
        if self._accept_symbol("*"):
            self._expect_symbol(")")
            if name != "count":
                raise ParseError(f"{name}(*) is not supported", name_token.position)
            return AstFuncCall(name=name, args=(), star=True)
        distinct = self._accept_keyword("distinct")
        args = [self.expr()]
        while self._accept_symbol(","):
            args.append(self.expr())
        self._expect_symbol(")")
        return AstFuncCall(name=name, args=tuple(args), distinct=distinct)
