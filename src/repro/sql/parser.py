"""Recursive-descent SQL parser: token stream -> unbound AST.

Grammar (roughly):

    select    := SELECT [DISTINCT] item (',' item)*
                 FROM table_ref (',' table_ref | JOIN table_ref ON expr)*
                 [WHERE expr] [GROUP BY column (',' column)*] [HAVING expr]
                 [ORDER BY order_item (',' order_item)*] [LIMIT number] [';']
    expr      := or_expr
    or_expr   := and_expr (OR and_expr)*
    and_expr  := not_expr (AND not_expr)*
    not_expr  := NOT not_expr | predicate
    predicate := additive [comparison | BETWEEN | IN]
    additive  := term (('+'|'-') term)*
    term      := factor (('*'|'/') factor)*
    factor    := '-' factor | primary
    primary   := literal | func '(' ... ')' | column | '(' expr ')'
"""

from __future__ import annotations

import datetime

from repro.errors import ParseError
from repro.sql.ast_nodes import (
    AstBetween,
    AstBinary,
    AstColumn,
    AstExpr,
    AstFuncCall,
    AstInList,
    AstJoin,
    AstLiteral,
    AstOrderItem,
    AstSelect,
    AstSelectItem,
    AstTableRef,
    AstUnary,
)
from repro.sql.lexer import Token, TokenType, tokenize

_COMPARISONS = {"=", "<>", "!=", "<", "<=", ">", ">="}
_FUNCTION_NAMES = {"sum", "count", "avg", "min", "max", "abs", "year"}


def parse(sql: str) -> AstSelect:
    """Parse one SELECT statement."""
    return _Parser(tokenize(sql)).parse_select()


#: Parsed template ASTs keyed on the literal-free template key:
#: ``(statement, slot specs, id(literal node) -> slot index, limit slot
#: index or None)``.  Bounded by wholesale reset — template pools are
#: tiny next to the cap, and the entries are pure functions of the key.
_TEMPLATE_CACHE: dict = {}
_TEMPLATE_CACHE_CAP = 4096


def parse_parameterized(template_key: tuple, constants: tuple) -> AstSelect:
    """Parse a ``(template_key, constants)`` pair, reusing the template.

    Grammar structure depends only on token kinds and keyword/symbol
    text — literal *values* never steer the parser — so the template's
    AST is parsed once and subsequent instantiations substitute fresh
    constants into a structural copy: bit-identical to re-parsing the
    full token stream, minus the token walk.  Error cases a real parse
    would reject (a non-string after DATE, a negated string, a
    non-numeric LIMIT) are re-checked during substitution.
    """
    from repro.sql.parameterize import bind_constants

    entry = _TEMPLATE_CACHE.get(template_key)
    if entry is None:
        tokens = [
            Token(TokenType[kind], text, 0)
            for kind, text in bind_constants(template_key, constants)
        ]
        tokens.append(Token(TokenType.EOF, "", 0))
        parser = _Parser(tokens)
        stmt = parser.parse_select()
        slots = parser.literal_slots
        if len(slots) != len(constants):
            # A literal token the parser consumed outside the recorded
            # slots would make substitution unsound; fall back to plain
            # parsing for this template.
            entry = None
        else:
            id_map = {
                id(marker): index
                for index, (marker, kind, _) in enumerate(slots)
                if kind != "limit"
            }
            limit_slot = next(
                (i for i, (_, kind, _) in enumerate(slots) if kind == "limit"),
                None,
            )
            specs = tuple((kind, negated) for _, kind, negated in slots)
            if len(_TEMPLATE_CACHE) >= _TEMPLATE_CACHE_CAP:
                _TEMPLATE_CACHE.clear()
            _TEMPLATE_CACHE[template_key] = (stmt, specs, id_map, limit_slot)
        return stmt

    stmt, specs, id_map, limit_slot = entry
    values = [
        _slot_value(kind, negated, constant)
        for (kind, negated), constant in zip(specs, constants)
    ]
    return _substitute_select(stmt, id_map, values, limit_slot)


def _slot_value(kind: str, negated: bool, constant: tuple[str, str]):
    token_kind, text = constant
    if kind == "limit":
        if token_kind != TokenType.NUMBER.name:
            raise ParseError("LIMIT requires a number", 0)
        return int(float(text))
    if kind == "date":
        if token_kind != TokenType.STRING.name:
            raise ParseError("DATE must be followed by a string", 0)
        value: int | float | str = parse_date(text)
    elif token_kind == TokenType.NUMBER.name:
        value = float(text) if "." in text else int(text)
    else:
        value = text
    if negated:
        if isinstance(value, str):
            raise ParseError("cannot negate a string literal", 0)
        # The parser's negation fold builds a plain AstLiteral(-value)
        # without the date flag; mirror it exactly.
        return AstLiteral(-value)
    return AstLiteral(value, is_date=(kind == "date"))


def _substitute_expr(node: AstExpr, id_map: dict, values: list) -> AstExpr:
    index = id_map.get(id(node))
    if index is not None:
        return values[index]
    if isinstance(node, AstBinary):
        left = _substitute_expr(node.left, id_map, values)
        right = _substitute_expr(node.right, id_map, values)
        if left is node.left and right is node.right:
            return node
        return AstBinary(node.op, left, right)
    if isinstance(node, AstUnary):
        operand = _substitute_expr(node.operand, id_map, values)
        return node if operand is node.operand else AstUnary(node.op, operand)
    if isinstance(node, AstBetween):
        operand = _substitute_expr(node.operand, id_map, values)
        low = _substitute_expr(node.low, id_map, values)
        high = _substitute_expr(node.high, id_map, values)
        if operand is node.operand and low is node.low and high is node.high:
            return node
        return AstBetween(operand, low, high, node.negated)
    if isinstance(node, AstInList):
        in_values = tuple(
            _substitute_expr(value, id_map, values) for value in node.values
        )
        operand = _substitute_expr(node.operand, id_map, values)
        if operand is node.operand and all(
            new is old for new, old in zip(in_values, node.values)
        ):
            return node
        return AstInList(operand, in_values, node.negated)  # type: ignore[arg-type]
    if isinstance(node, AstFuncCall):
        args = tuple(_substitute_expr(arg, id_map, values) for arg in node.args)
        if all(new is old for new, old in zip(args, node.args)):
            return node
        return AstFuncCall(node.name, args, node.distinct, node.star)
    # Columns and unmapped literals carry no substitutable state.
    return node


def _substitute_select(
    stmt: AstSelect, id_map: dict, values: list, limit_slot: int | None
) -> AstSelect:
    fresh = AstSelect()
    fresh.items = [
        AstSelectItem(_substitute_expr(item.expr, id_map, values), item.alias)
        for item in stmt.items
    ]
    fresh.tables = list(stmt.tables)
    fresh.joins = [
        AstJoin(join.table, _substitute_expr(join.condition, id_map, values))
        for join in stmt.joins
    ]
    if stmt.where is not None:
        fresh.where = _substitute_expr(stmt.where, id_map, values)
    fresh.group_by = list(stmt.group_by)
    if stmt.having is not None:
        fresh.having = _substitute_expr(stmt.having, id_map, values)
    fresh.order_by = [
        AstOrderItem(_substitute_expr(item.expr, id_map, values), item.ascending)
        for item in stmt.order_by
    ]
    fresh.limit = values[limit_slot] if limit_slot is not None else stmt.limit
    fresh.distinct = stmt.distinct
    return fresh


def parse_date(text: str, position: int = 0) -> int:
    """Convert ``YYYY-MM-DD`` into epoch days (the engine's date encoding)."""
    try:
        parsed = datetime.date.fromisoformat(text)
    except ValueError as exc:
        raise ParseError(f"invalid date literal {text!r}: {exc}", position) from None
    return (parsed - datetime.date(1970, 1, 1)).days


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0
        #: Literal substitution slots in token order, one per literal
        #: token consumed: ``[node_or_marker, kind, negated]`` where
        #: ``kind`` is "plain" (number/string), "date", or "limit".
        #: The template-AST cache uses these to re-bind fresh constants
        #: into a cached parse (see :func:`parse_parameterized`).
        self.literal_slots: list[list] = []

    # ------------------------------------------------------------------ #
    # Token helpers
    # ------------------------------------------------------------------ #
    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.type is not TokenType.EOF:
            self._pos += 1
        return token

    def _accept_keyword(self, word: str) -> bool:
        if self._peek().is_keyword(word):
            self._advance()
            return True
        return False

    def _accept_symbol(self, symbol: str) -> bool:
        if self._peek().is_symbol(symbol):
            self._advance()
            return True
        return False

    def _expect_keyword(self, word: str) -> Token:
        token = self._peek()
        if not token.is_keyword(word):
            raise ParseError(f"expected {word.upper()}, found {token.text!r}", token.position)
        return self._advance()

    def _expect_symbol(self, symbol: str) -> Token:
        token = self._peek()
        if not token.is_symbol(symbol):
            raise ParseError(f"expected {symbol!r}, found {token.text!r}", token.position)
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.type is not TokenType.IDENT:
            raise ParseError(f"expected identifier, found {token.text!r}", token.position)
        return self._advance()

    # ------------------------------------------------------------------ #
    # Statement
    # ------------------------------------------------------------------ #
    def parse_select(self) -> AstSelect:
        self._expect_keyword("select")
        stmt = AstSelect()
        stmt.distinct = self._accept_keyword("distinct")
        stmt.items.append(self._select_item())
        while self._accept_symbol(","):
            stmt.items.append(self._select_item())

        self._expect_keyword("from")
        stmt.tables.append(self._table_ref())
        while True:
            if self._accept_symbol(","):
                stmt.tables.append(self._table_ref())
                continue
            if self._peek().is_keyword("inner") or self._peek().is_keyword("join"):
                self._accept_keyword("inner")
                self._expect_keyword("join")
                table = self._table_ref()
                self._expect_keyword("on")
                condition = self.expr()
                stmt.joins.append(AstJoin(table=table, condition=condition))
                continue
            break

        if self._accept_keyword("where"):
            stmt.where = self.expr()
        if self._accept_keyword("group"):
            self._expect_keyword("by")
            stmt.group_by.append(self._group_column())
            while self._accept_symbol(","):
                stmt.group_by.append(self._group_column())
        if self._accept_keyword("having"):
            stmt.having = self.expr()
        if self._accept_keyword("order"):
            self._expect_keyword("by")
            stmt.order_by.append(self._order_item())
            while self._accept_symbol(","):
                stmt.order_by.append(self._order_item())
        if self._accept_keyword("limit"):
            token = self._peek()
            if token.type is not TokenType.NUMBER:
                raise ParseError("LIMIT requires a number", token.position)
            self._advance()
            stmt.limit = int(float(token.text))
            self.literal_slots.append(["limit", "limit", False])
        self._accept_symbol(";")
        tail = self._peek()
        if tail.type is not TokenType.EOF:
            raise ParseError(f"unexpected trailing input {tail.text!r}", tail.position)
        return stmt

    def _select_item(self) -> AstSelectItem:
        expr = self.expr()
        alias: str | None = None
        if self._accept_keyword("as"):
            alias = self._expect_ident().text
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().text
        return AstSelectItem(expr=expr, alias=alias)

    def _table_ref(self) -> AstTableRef:
        name = self._expect_ident().text
        alias: str | None = None
        if self._accept_keyword("as"):
            alias = self._expect_ident().text
        elif self._peek().type is TokenType.IDENT:
            alias = self._advance().text
        return AstTableRef(name=name, alias=alias)

    def _group_column(self) -> AstColumn:
        expr = self.expr()
        if not isinstance(expr, AstColumn):
            raise ParseError("GROUP BY supports plain columns only", self._peek().position)
        return expr

    def _order_item(self) -> AstOrderItem:
        expr = self.expr()
        ascending = True
        if self._accept_keyword("asc"):
            ascending = True
        elif self._accept_keyword("desc"):
            ascending = False
        return AstOrderItem(expr=expr, ascending=ascending)

    # ------------------------------------------------------------------ #
    # Expressions
    # ------------------------------------------------------------------ #
    def expr(self) -> AstExpr:
        return self._or_expr()

    def _or_expr(self) -> AstExpr:
        left = self._and_expr()
        while self._accept_keyword("or"):
            left = AstBinary("or", left, self._and_expr())
        return left

    def _and_expr(self) -> AstExpr:
        left = self._not_expr()
        while self._accept_keyword("and"):
            left = AstBinary("and", left, self._not_expr())
        return left

    def _not_expr(self) -> AstExpr:
        if self._accept_keyword("not"):
            return AstUnary("not", self._not_expr())
        return self._predicate()

    def _predicate(self) -> AstExpr:
        left = self._additive()
        token = self._peek()
        if token.type is TokenType.SYMBOL and token.text in _COMPARISONS:
            self._advance()
            op = "<>" if token.text == "!=" else token.text
            return AstBinary(op, left, self._additive())
        negated = False
        if token.is_keyword("not"):
            lookahead = self._peek(1)
            if lookahead.is_keyword("between") or lookahead.is_keyword("in"):
                self._advance()
                negated = True
                token = self._peek()
        if token.is_keyword("between"):
            self._advance()
            low = self._additive()
            self._expect_keyword("and")
            high = self._additive()
            return AstBetween(left, low, high, negated=negated)
        if token.is_keyword("in"):
            self._advance()
            self._expect_symbol("(")
            values = [self._literal()]
            while self._accept_symbol(","):
                values.append(self._literal())
            self._expect_symbol(")")
            return AstInList(left, tuple(values), negated=negated)
        if negated:
            raise ParseError("expected BETWEEN or IN after NOT", token.position)
        return left

    def _additive(self) -> AstExpr:
        left = self._term()
        while True:
            token = self._peek()
            if token.is_symbol("+") or token.is_symbol("-"):
                self._advance()
                left = AstBinary(token.text, left, self._term())
            else:
                return left

    def _term(self) -> AstExpr:
        left = self._factor()
        while True:
            token = self._peek()
            if token.is_symbol("*") or token.is_symbol("/"):
                self._advance()
                left = AstBinary(token.text, left, self._factor())
            else:
                return left

    def _factor(self) -> AstExpr:
        if self._accept_symbol("-"):
            return AstUnary("-", self._factor())
        return self._primary()

    def _primary(self) -> AstExpr:
        token = self._peek()
        if token.type is TokenType.NUMBER:
            self._advance()
            text = token.text
            value: int | float = float(text) if "." in text else int(text)
            node = AstLiteral(value)
            self.literal_slots.append([node, "plain", False])
            return node
        if token.type is TokenType.STRING:
            self._advance()
            node = AstLiteral(token.text)
            self.literal_slots.append([node, "plain", False])
            return node
        if token.is_keyword("date"):
            self._advance()
            literal = self._peek()
            if literal.type is not TokenType.STRING:
                raise ParseError("DATE must be followed by a string", literal.position)
            self._advance()
            node = AstLiteral(parse_date(literal.text, literal.position), is_date=True)
            self.literal_slots.append([node, "date", False])
            return node
        if token.is_symbol("("):
            self._advance()
            inner = self.expr()
            self._expect_symbol(")")
            return inner
        if token.type is TokenType.IDENT:
            if token.text in _FUNCTION_NAMES and self._peek(1).is_symbol("("):
                return self._func_call()
            self._advance()
            if self._accept_symbol("."):
                column = self._expect_ident()
                return AstColumn(name=column.text, qualifier=token.text)
            return AstColumn(name=token.text)
        raise ParseError(f"unexpected token {token.text!r}", token.position)

    def _literal(self) -> AstLiteral:
        expr = self._primary()
        if isinstance(expr, AstUnary) and expr.op == "-" and isinstance(expr.operand, AstLiteral):
            value = expr.operand.value
            if isinstance(value, str):
                raise ParseError("cannot negate a string literal", self._peek().position)
            node = AstLiteral(-value)
            # The negation folds into the literal: repoint its slot at
            # the folded node and remember the sign for substitution.
            slot = self.literal_slots[-1]
            assert slot[0] is expr.operand
            slot[0] = node
            slot[2] = True
            return node
        if not isinstance(expr, AstLiteral):
            raise ParseError("expected a literal value", self._peek().position)
        return expr

    def _func_call(self) -> AstExpr:
        name_token = self._advance()
        name = name_token.text
        self._expect_symbol("(")
        if self._accept_symbol("*"):
            self._expect_symbol(")")
            if name != "count":
                raise ParseError(f"{name}(*) is not supported", name_token.position)
            return AstFuncCall(name=name, args=(), star=True)
        distinct = self._accept_keyword("distinct")
        args = [self.expr()]
        while self._accept_symbol(","):
            args.append(self.expr())
        self._expect_symbol(")")
        return AstFuncCall(name=name, args=tuple(args), distinct=distinct)
