"""Byte/time/money unit constants and human-readable formatting.

The simulator and cost models work in SI base units throughout: bytes,
seconds, and dollars.  These helpers exist so that module code never
hard-codes magic ``1 << 30`` style constants and so that reports printed by
the benchmark harness are readable.
"""

from __future__ import annotations

KB: int = 1024
MB: int = 1024 * KB
GB: int = 1024 * MB
TB: int = 1024 * GB

SECONDS_PER_HOUR: float = 3600.0
HOURS_PER_MONTH: float = 730.0  # convention used by cloud storage pricing

# --------------------------------------------------------------------- #
# Fixed-point billing units
# --------------------------------------------------------------------- #
#: Ledger units per dollar.  A power of two: multiplying a float dollar
#: amount by it is exact (exponent shift), and 2^80 sits far enough
#: below the 53-bit mantissa of any plausible dollar amount (anything
#: >= 2^-27 dollars) that the conversion is *lossless* — ``round()``
#: never discards a set bit, so a one-charge bill reads back the exact
#: float that was charged.  Integer accumulation (Python ints are
#: arbitrary precision) is then exact and order-independent, which is
#: what makes a crash-recovery replay reproduce live totals to the
#: last bit.  Every authoritative dollar balance in the repo — tenant
#: bills, journal replay, resilience retry metering — accumulates in
#: these units; the ``float-billing`` rule in :mod:`repro.analysis`
#: rejects float ``+=`` on ``*_dollars`` state outside these helpers.
LEDGER_SCALE = 1 << 80


def to_ledger_units(dollars: float) -> int:
    """Exact-by-construction conversion of a dollar amount to units."""
    return round(dollars * LEDGER_SCALE)


def from_ledger_units(units: int) -> float:
    """The float dollar value of an integral unit balance."""
    return units / LEDGER_SCALE


def fmt_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary-unit suffix, e.g. ``1.50 GB``."""
    value = float(num_bytes)
    for suffix, unit in (("TB", TB), ("GB", GB), ("MB", MB), ("KB", KB)):
        if abs(value) >= unit:
            return f"{value / unit:.2f} {suffix}"
    return f"{value:.0f} B"


def fmt_duration(seconds: float) -> str:
    """Render a duration, scaling between ms, s, min, and h."""
    if seconds < 0:
        return f"-{fmt_duration(-seconds)}"
    if seconds < 1.0:
        return f"{seconds * 1000:.1f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    if seconds < 2 * SECONDS_PER_HOUR:
        return f"{seconds / 60.0:.1f} min"
    return f"{seconds / SECONDS_PER_HOUR:.2f} h"


def fmt_dollars(dollars: float) -> str:
    """Render a dollar amount; sub-cent values keep 4 significant decimals."""
    if dollars != 0 and abs(dollars) < 0.01:
        return f"${dollars:.4f}"
    return f"${dollars:,.2f}"


def fmt_rate(bytes_per_second: float) -> str:
    """Render a data rate, e.g. ``250.0 MB/s``."""
    return f"{fmt_bytes(bytes_per_second)}/s"
