"""Deterministic random-number-generator plumbing.

Every stochastic component (data generation, simulator noise, skew,
arrival processes) takes a ``numpy.random.Generator``.  ``derive_rng``
derives independent child generators from a parent seed and a stream label
so that adding a new consumer never perturbs existing streams — a
prerequisite for reproducible experiments.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_rng(seed: int, *labels: str) -> np.random.Generator:
    """Derive a child generator from ``seed`` and a label path.

    The label path is hashed (SHA-256) together with the seed so distinct
    labels yield statistically independent streams, and the mapping is
    stable across platforms and Python versions.
    """
    digest = hashlib.sha256()
    digest.update(str(int(seed)).encode("utf-8"))
    for label in labels:
        digest.update(b"/")
        digest.update(label.encode("utf-8"))
    child_seed = int.from_bytes(digest.digest()[:8], "little")
    return np.random.default_rng(child_seed)
