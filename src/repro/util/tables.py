"""Plain-text table rendering for benchmark reports.

The benchmark harness prints the same rows/series the paper's experiments
report; ``TextTable`` keeps that output aligned and diff-friendly without
pulling in a formatting dependency.
"""

from __future__ import annotations

from typing import Any, Sequence


class TextTable:
    """Accumulate rows and render an aligned ASCII table.

    >>> t = TextTable(["dop", "latency", "cost"])
    >>> t.add_row([4, "1.25 s", "$0.02"])
    >>> print(t.render())  # doctest: +NORMALIZE_WHITESPACE
    dop | latency | cost
    ----+---------+------
    4   | 1.25 s  | $0.02
    """

    def __init__(self, headers: Sequence[str], *, title: str | None = None) -> None:
        self.title = title
        self.headers = [str(h) for h in headers]
        self.rows: list[list[str]] = []

    def add_row(self, cells: Sequence[Any]) -> None:
        row = [self._fmt(cell) for cell in cells]
        if len(row) != len(self.headers):
            raise ValueError(
                f"row has {len(row)} cells, table has {len(self.headers)} columns"
            )
        self.rows.append(row)

    @staticmethod
    def _fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.4g}"
        return str(cell)

    def render(self) -> str:
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))
        lines: list[str] = []
        if self.title:
            lines.append(self.title)
        header = " | ".join(h.ljust(w) for h, w in zip(self.headers, widths))
        lines.append(header)
        lines.append("-+-".join("-" * w for w in widths))
        for row in self.rows:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
