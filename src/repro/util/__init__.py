"""Shared utilities: unit helpers, table rendering, Pareto math, RNG."""

from repro.util.units import (
    GB,
    KB,
    MB,
    TB,
    fmt_bytes,
    fmt_dollars,
    fmt_duration,
    fmt_rate,
)
from repro.util.pareto import ParetoPoint, dominates, pareto_frontier
from repro.util.tables import TextTable
from repro.util.rng import derive_rng

__all__ = [
    "KB",
    "MB",
    "GB",
    "TB",
    "fmt_bytes",
    "fmt_dollars",
    "fmt_duration",
    "fmt_rate",
    "ParetoPoint",
    "dominates",
    "pareto_frontier",
    "TextTable",
    "derive_rng",
]
