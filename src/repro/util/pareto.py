"""Pareto-frontier utilities for the cost/performance trade-off (paper Fig. 2).

Convention: both coordinates are *costs to minimize* — ``latency`` (seconds)
and ``dollars``.  A point dominates another when it is no worse on both axes
and strictly better on at least one.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Sequence


@dataclass(frozen=True)
class ParetoPoint:
    """A single configuration's outcome in (latency, dollars) space.

    ``payload`` carries the configuration that produced the point (a plan,
    a cluster size, a policy name) so frontier consumers can act on it.
    """

    latency: float
    dollars: float
    payload: Any = field(default=None, compare=False)


def dominates(a: ParetoPoint, b: ParetoPoint, *, tol: float = 0.0) -> bool:
    """Return ``True`` when ``a`` Pareto-dominates ``b``.

    ``tol`` treats improvements smaller than the tolerance as ties, which
    avoids declaring dominance on simulation noise.
    """
    no_worse = a.latency <= b.latency + tol and a.dollars <= b.dollars + tol
    strictly_better = a.latency < b.latency - tol or a.dollars < b.dollars - tol
    return no_worse and strictly_better


def pareto_frontier(
    points: Iterable[ParetoPoint], *, tol: float = 0.0
) -> list[ParetoPoint]:
    """Return the non-dominated subset sorted by ascending latency.

    Runs in O(n log n): sort by (latency, dollars) and keep points whose
    dollar cost strictly improves on the best seen so far.  Duplicate
    outcomes are collapsed to a single representative.
    """
    ordered = sorted(points, key=lambda p: (p.latency, p.dollars))
    frontier: list[ParetoPoint] = []
    best_dollars = float("inf")
    for point in ordered:
        if point.dollars < best_dollars - tol:
            if frontier and frontier[-1].latency == point.latency:
                # Same latency, cheaper: replace rather than append.
                frontier[-1] = point
            else:
                frontier.append(point)
            best_dollars = point.dollars
    return frontier


def hypervolume(
    frontier: Sequence[ParetoPoint], ref_latency: float, ref_dollars: float
) -> float:
    """Dominated hypervolume w.r.t. a reference (worst-case) corner.

    A standard scalar quality measure for a 2-D frontier: larger is better.
    Points beyond the reference corner contribute nothing.
    """
    ordered = pareto_frontier(frontier)
    volume = 0.0
    prev_latency = ref_latency
    # Walk from the highest-latency (cheapest) end toward low latency.
    for point in reversed(ordered):
        if point.latency >= ref_latency or point.dollars >= ref_dollars:
            continue
        width = prev_latency - point.latency
        height = ref_dollars - point.dollars
        if width > 0 and height > 0:
            volume += width * height
            prev_latency = point.latency
    return volume


def distance_to_frontier(
    point: ParetoPoint,
    frontier: Sequence[ParetoPoint],
    *,
    latency_scale: float = 1.0,
    dollar_scale: float = 1.0,
) -> float:
    """Normalized Euclidean distance from ``point`` to the closest frontier
    point; 0.0 means the point sits on the frontier.

    Scales let callers normalize axes with incomparable units (seconds vs
    dollars) before measuring, e.g. by the workload's worst-case values.
    """
    if not frontier:
        raise ValueError("frontier must not be empty")
    best = float("inf")
    for anchor in frontier:
        d_lat = (point.latency - anchor.latency) / latency_scale
        d_usd = (point.dollars - anchor.dollars) / dollar_scale
        best = min(best, (d_lat * d_lat + d_usd * d_usd) ** 0.5)
    return best
