"""Scalar expression trees.

One expression representation is shared by the SQL binder, the optimizer
(selectivity estimation, predicate pushdown), and the local engine
(vectorized evaluation over numpy column batches).  Expressions are
immutable; evaluation takes a ``dict[str, np.ndarray]`` batch keyed by
column name and returns a numpy array (or a scalar broadcast by numpy).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

import numpy as np

from repro.errors import PlanError

# Comparison and arithmetic operators supported by BinaryOp.
COMPARISON_OPS = {"=", "<>", "<", "<=", ">", ">="}
ARITHMETIC_OPS = {"+", "-", "*", "/"}
LOGICAL_OPS = {"and", "or"}
_ALL_BINARY = COMPARISON_OPS | ARITHMETIC_OPS | LOGICAL_OPS

AGGREGATE_FUNCS = {"sum", "count", "avg", "min", "max"}
SCALAR_FUNCS = {"abs", "year"}


class Expr:
    """Base class for scalar expressions (immutable)."""

    def evaluate(self, batch: dict[str, np.ndarray]) -> np.ndarray:
        raise NotImplementedError

    def children(self) -> tuple["Expr", ...]:
        return ()

    def sql(self) -> str:
        """Render a SQL-ish string for reports and debugging."""
        raise NotImplementedError

    def __str__(self) -> str:
        return self.sql()


@dataclass(frozen=True)
class ColumnRef(Expr):
    """Reference to a column by its bound (unique) name.

    ``table`` records the owning base table when known; engine batches are
    keyed by bare column name, which the binder guarantees to be unique
    within a query.
    """

    name: str
    table: str | None = None

    def evaluate(self, batch: dict[str, np.ndarray]) -> np.ndarray:
        try:
            return batch[self.name]
        except KeyError:
            raise PlanError(f"batch has no column {self.name!r}") from None

    def sql(self) -> str:
        return f"{self.table}.{self.name}" if self.table else self.name


@dataclass(frozen=True)
class Literal(Expr):
    """A constant value (int, float, bool, or dictionary-coded string)."""

    value: float | int | bool | str

    def evaluate(self, batch: dict[str, np.ndarray]) -> np.ndarray:
        if isinstance(self.value, str):
            raise PlanError(
                f"string literal {self.value!r} must be dictionary-encoded "
                "by the binder before evaluation"
            )
        return np.asarray(self.value)

    def sql(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return repr(self.value)


@dataclass(frozen=True)
class BinaryOp(Expr):
    """Binary arithmetic, comparison, or logical operator."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _ALL_BINARY:
            raise PlanError(f"unsupported binary operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def evaluate(self, batch: dict[str, np.ndarray]) -> np.ndarray:
        lhs = self.left.evaluate(batch)
        rhs = self.right.evaluate(batch)
        op = self.op
        if op == "+":
            return lhs + rhs
        if op == "-":
            return lhs - rhs
        if op == "*":
            return lhs * rhs
        if op == "/":
            return np.divide(lhs, rhs, dtype=np.float64)
        if op == "=":
            return lhs == rhs
        if op == "<>":
            return lhs != rhs
        if op == "<":
            return lhs < rhs
        if op == "<=":
            return lhs <= rhs
        if op == ">":
            return lhs > rhs
        if op == ">=":
            return lhs >= rhs
        if op == "and":
            return np.logical_and(lhs, rhs)
        if op == "or":
            return np.logical_or(lhs, rhs)
        raise PlanError(f"unsupported binary operator {op!r}")

    def sql(self) -> str:
        op = self.op.upper() if self.op in LOGICAL_OPS else self.op
        return f"({self.left.sql()} {op} {self.right.sql()})"


@dataclass(frozen=True)
class UnaryOp(Expr):
    """Unary operator: ``not`` or numeric negation ``-``."""

    op: str
    operand: Expr

    def __post_init__(self) -> None:
        if self.op not in ("not", "-"):
            raise PlanError(f"unsupported unary operator {self.op!r}")

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def evaluate(self, batch: dict[str, np.ndarray]) -> np.ndarray:
        value = self.operand.evaluate(batch)
        if self.op == "not":
            return np.logical_not(value)
        return -value

    def sql(self) -> str:
        if self.op == "not":
            return f"(NOT {self.operand.sql()})"
        return f"(-{self.operand.sql()})"


@dataclass(frozen=True)
class InList(Expr):
    """``expr IN (v1, v2, ...)`` over literal values."""

    operand: Expr
    values: tuple[float | int | bool | str, ...]
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def evaluate(self, batch: dict[str, np.ndarray]) -> np.ndarray:
        value = self.operand.evaluate(batch)
        if any(isinstance(v, str) for v in self.values):
            raise PlanError("string IN-list must be dictionary-encoded by the binder")
        mask = np.isin(value, np.asarray(self.values))
        return ~mask if self.negated else mask

    def sql(self) -> str:
        rendered = ", ".join(
            f"'{v}'" if isinstance(v, str) else repr(v) for v in self.values
        )
        keyword = "NOT IN" if self.negated else "IN"
        return f"({self.operand.sql()} {keyword} ({rendered}))"


@dataclass(frozen=True)
class FuncCall(Expr):
    """Scalar function call (``abs``, ``year`` over epoch-day dates)."""

    name: str
    args: tuple[Expr, ...]

    def __post_init__(self) -> None:
        if self.name not in SCALAR_FUNCS:
            raise PlanError(f"unsupported scalar function {self.name!r}")

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def evaluate(self, batch: dict[str, np.ndarray]) -> np.ndarray:
        args = [a.evaluate(batch) for a in self.args]
        if self.name == "abs":
            return np.abs(args[0])
        if self.name == "year":
            days = np.asarray(args[0]).astype("datetime64[D]")
            return days.astype("datetime64[Y]").astype(np.int64) + 1970
        raise PlanError(f"unsupported scalar function {self.name!r}")

    def sql(self) -> str:
        return f"{self.name}({', '.join(a.sql() for a in self.args)})"


@dataclass(frozen=True)
class AggCall(Expr):
    """Aggregate function call; only valid inside an aggregation operator.

    ``arg`` is None for ``count(*)``.  AggCall.evaluate is intentionally
    unsupported — aggregation is performed by the aggregate operators,
    which group rows first.
    """

    func: str
    arg: Expr | None = None
    distinct: bool = False

    def __post_init__(self) -> None:
        if self.func not in AGGREGATE_FUNCS:
            raise PlanError(f"unsupported aggregate {self.func!r}")
        if self.func != "count" and self.arg is None:
            raise PlanError(f"aggregate {self.func} requires an argument")

    def children(self) -> tuple[Expr, ...]:
        return (self.arg,) if self.arg is not None else ()

    def evaluate(self, batch: dict[str, np.ndarray]) -> np.ndarray:
        raise PlanError("AggCall must be evaluated by an aggregation operator")

    def sql(self) -> str:
        inner = "*" if self.arg is None else self.arg.sql()
        if self.distinct:
            inner = f"DISTINCT {inner}"
        return f"{self.func}({inner})"


# ---------------------------------------------------------------------- #
# Expression utilities
# ---------------------------------------------------------------------- #
def walk(expr: Expr) -> Iterator[Expr]:
    """Pre-order traversal of an expression tree."""
    yield expr
    for child in expr.children():
        yield from walk(child)


def referenced_columns(expr: Expr) -> set[str]:
    """All column names referenced anywhere in ``expr``."""
    return {node.name for node in walk(expr) if isinstance(node, ColumnRef)}


def referenced_tables(expr: Expr) -> set[str]:
    """All table names attached to column refs in ``expr`` (bound exprs)."""
    return {
        node.table
        for node in walk(expr)
        if isinstance(node, ColumnRef) and node.table is not None
    }


def contains_aggregate(expr: Expr) -> bool:
    return any(isinstance(node, AggCall) for node in walk(expr))


def conjuncts(expr: Expr | None) -> list[Expr]:
    """Split a predicate into its top-level AND-ed conjuncts."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op == "and":
        return conjuncts(expr.left) + conjuncts(expr.right)
    return [expr]


def make_and(parts: Iterable[Expr]) -> Expr | None:
    """Combine predicates with AND; returns None for an empty iterable."""
    result: Expr | None = None
    for part in parts:
        result = part if result is None else BinaryOp("and", result, part)
    return result


def is_equi_join_condition(expr: Expr) -> tuple[ColumnRef, ColumnRef] | None:
    """Return the two column refs when ``expr`` is ``col_a = col_b`` between
    different tables, else None."""
    if not (isinstance(expr, BinaryOp) and expr.op == "="):
        return None
    left, right = expr.left, expr.right
    if not (isinstance(left, ColumnRef) and isinstance(right, ColumnRef)):
        return None
    if left.table is not None and left.table == right.table:
        return None
    return (left, right)
