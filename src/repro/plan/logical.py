"""Logical plan operators.

The DAG-planning stage (paper §3.2) works on these nodes: relational
operators with no physical decisions (no distribution, no DOP).  Nodes are
immutable; the optimizer builds new trees rather than mutating.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import PlanError
from repro.plan.expressions import AggCall, ColumnRef, Expr


class LogicalNode:
    """Base class for logical operators."""

    def children(self) -> tuple["LogicalNode", ...]:
        return ()

    def output_columns(self) -> tuple[str, ...]:
        """Names of columns this operator produces."""
        raise NotImplementedError

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [pad + self.describe()]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)

    def describe(self) -> str:
        return type(self).__name__


def walk_logical(node: LogicalNode) -> Iterator[LogicalNode]:
    yield node
    for child in node.children():
        yield from walk_logical(child)


@dataclass(frozen=True)
class LogicalScan(LogicalNode):
    """Scan of a base table or materialized view.

    ``predicate`` holds pushed-down filters evaluated during the scan;
    ``columns`` is the projection actually read from storage.
    """

    table: str
    columns: tuple[str, ...]
    predicate: Expr | None = None
    is_view: bool = False

    def output_columns(self) -> tuple[str, ...]:
        return self.columns

    def describe(self) -> str:
        pred = f" filter={self.predicate.sql()}" if self.predicate else ""
        kind = "ViewScan" if self.is_view else "Scan"
        return f"{kind}({self.table} cols={','.join(self.columns)}{pred})"


@dataclass(frozen=True)
class LogicalFilter(LogicalNode):
    child: LogicalNode
    predicate: Expr

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def output_columns(self) -> tuple[str, ...]:
        return self.child.output_columns()

    def describe(self) -> str:
        return f"Filter({self.predicate.sql()})"


@dataclass(frozen=True)
class LogicalProject(LogicalNode):
    """Compute named expressions; drops all other columns."""

    child: LogicalNode
    exprs: tuple[Expr, ...]
    names: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.exprs) != len(self.names):
            raise PlanError("project exprs/names length mismatch")

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def output_columns(self) -> tuple[str, ...]:
        return self.names

    def describe(self) -> str:
        items = ", ".join(
            f"{e.sql()} AS {n}" for e, n in zip(self.exprs, self.names)
        )
        return f"Project({items})"


@dataclass(frozen=True)
class LogicalJoin(LogicalNode):
    """Inner equi-join on one or more key pairs.

    ``left_keys[i]`` joins with ``right_keys[i]``.  Non-equi residual
    predicates are applied by ``residual`` after the match.
    """

    left: LogicalNode
    right: LogicalNode
    left_keys: tuple[ColumnRef, ...]
    right_keys: tuple[ColumnRef, ...]
    residual: Expr | None = None

    def __post_init__(self) -> None:
        if len(self.left_keys) != len(self.right_keys):
            raise PlanError("join key arity mismatch")
        if not self.left_keys:
            raise PlanError("cross joins are not supported; provide equi keys")

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.left, self.right)

    def output_columns(self) -> tuple[str, ...]:
        return self.left.output_columns() + self.right.output_columns()

    def describe(self) -> str:
        keys = ", ".join(
            f"{l.sql()}={r.sql()}" for l, r in zip(self.left_keys, self.right_keys)
        )
        return f"Join({keys})"


@dataclass(frozen=True)
class LogicalAggregate(LogicalNode):
    """Hash aggregation with optional grouping."""

    child: LogicalNode
    group_keys: tuple[ColumnRef, ...]
    aggregates: tuple[AggCall, ...]
    agg_names: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.aggregates) != len(self.agg_names):
            raise PlanError("aggregate exprs/names length mismatch")

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def output_columns(self) -> tuple[str, ...]:
        return tuple(k.name for k in self.group_keys) + self.agg_names

    def describe(self) -> str:
        keys = ",".join(k.name for k in self.group_keys) or "<global>"
        aggs = ", ".join(
            f"{a.sql()} AS {n}" for a, n in zip(self.aggregates, self.agg_names)
        )
        return f"Aggregate(by={keys}; {aggs})"


@dataclass(frozen=True)
class LogicalSort(LogicalNode):
    child: LogicalNode
    keys: tuple[str, ...]
    ascending: tuple[bool, ...]

    def __post_init__(self) -> None:
        if len(self.keys) != len(self.ascending):
            raise PlanError("sort keys/direction length mismatch")

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def output_columns(self) -> tuple[str, ...]:
        return self.child.output_columns()

    def describe(self) -> str:
        keys = ", ".join(
            f"{k} {'ASC' if a else 'DESC'}" for k, a in zip(self.keys, self.ascending)
        )
        return f"Sort({keys})"


@dataclass(frozen=True)
class LogicalLimit(LogicalNode):
    child: LogicalNode
    limit: int

    def __post_init__(self) -> None:
        if self.limit < 0:
            raise PlanError(f"negative limit {self.limit}")

    def children(self) -> tuple[LogicalNode, ...]:
        return (self.child,)

    def output_columns(self) -> tuple[str, ...]:
        return self.child.output_columns()

    def describe(self) -> str:
        return f"Limit({self.limit})"
