"""Physical plan operators.

Output of the DAG-planning stage and input to DOP planning (paper §3.2):
relational operators with physical decisions made — join sides, exchange
placement (shuffle/broadcast/gather), aggregation phases — but *without*
DOP assignments, which the DOP planner attaches per pipeline afterwards.

Every node carries the optimizer's output-cardinality estimate
(``est_rows``/``est_bytes``); the distributed simulator later overrides
these with true values to model estimation error (§3.3).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import PlanError
from repro.plan.expressions import AggCall, ColumnRef, Expr

_node_ids = itertools.count(1)


class ExchangeKind(enum.Enum):
    """Data redistribution flavors between (or within) pipelines."""

    SHUFFLE = "shuffle"  # hash-partition rows on keys across dop nodes
    BROADCAST = "broadcast"  # replicate full input to every node
    GATHER = "gather"  # collect to a single node (result / final sort)


@dataclass
class PhysNode:
    """Base physical operator.

    ``est_rows``/``est_bytes`` describe the operator's *output*.  ``node_id``
    is unique per process and keys run-time feedback (true cardinalities)
    back to plan nodes.
    """

    est_rows: float = field(default=0.0, init=False)
    est_bytes: float = field(default=0.0, init=False)
    node_id: int = field(default_factory=lambda: next(_node_ids), init=False)

    def children(self) -> tuple["PhysNode", ...]:
        return ()

    def output_columns(self) -> tuple[str, ...]:
        raise NotImplementedError

    def describe(self) -> str:
        return type(self).__name__

    def pretty(self, indent: int = 0) -> str:
        pad = "  " * indent
        lines = [
            f"{pad}{self.describe()} "
            f"[rows={self.est_rows:,.0f} bytes={self.est_bytes:,.0f}]"
        ]
        for child in self.children():
            lines.append(child.pretty(indent + 1))
        return "\n".join(lines)


@dataclass
class PhysScan(PhysNode):
    """Columnar scan of a base table (or materialized view).

    ``partition_fraction`` is the fraction of micro-partitions surviving
    zone-map pruning — the quantity reclustering (§4) improves.
    ``input_rows``/``input_bytes`` describe what is read from storage
    before the scan predicate filters rows.
    """

    table: str
    columns: tuple[str, ...]
    predicate: Expr | None = None
    is_view: bool = False
    partition_fraction: float = 1.0
    input_rows: float = 0.0
    input_bytes: float = 0.0

    def output_columns(self) -> tuple[str, ...]:
        return self.columns

    def describe(self) -> str:
        pred = f" filter={self.predicate.sql()}" if self.predicate else ""
        return (
            f"Scan({self.table}{pred} "
            f"read={self.input_bytes:,.0f}B frac={self.partition_fraction:.2f})"
        )


@dataclass
class PhysFilter(PhysNode):
    child: PhysNode
    predicate: Expr

    def children(self) -> tuple[PhysNode, ...]:
        return (self.child,)

    def output_columns(self) -> tuple[str, ...]:
        return self.child.output_columns()

    def describe(self) -> str:
        return f"Filter({self.predicate.sql()})"


@dataclass
class PhysProject(PhysNode):
    child: PhysNode
    exprs: tuple[Expr, ...]
    names: tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.exprs) != len(self.names):
            raise PlanError("project exprs/names length mismatch")

    def children(self) -> tuple[PhysNode, ...]:
        return (self.child,)

    def output_columns(self) -> tuple[str, ...]:
        return self.names

    def describe(self) -> str:
        return f"Project({', '.join(self.names)})"


@dataclass
class PhysExchange(PhysNode):
    """Streaming data redistribution within a pipeline."""

    child: PhysNode
    kind: ExchangeKind
    keys: tuple[str, ...] = ()

    def children(self) -> tuple[PhysNode, ...]:
        return (self.child,)

    def output_columns(self) -> tuple[str, ...]:
        return self.child.output_columns()

    def describe(self) -> str:
        keys = f" on {','.join(self.keys)}" if self.keys else ""
        return f"Exchange({self.kind.value}{keys})"


@dataclass
class PhysHashJoin(PhysNode):
    """Hash join; ``build`` is materialized, ``probe`` streams through."""

    build: PhysNode
    probe: PhysNode
    build_keys: tuple[ColumnRef, ...]
    probe_keys: tuple[ColumnRef, ...]
    residual: Expr | None = None
    broadcast_build: bool = False

    def __post_init__(self) -> None:
        if len(self.build_keys) != len(self.probe_keys):
            raise PlanError("join key arity mismatch")

    def children(self) -> tuple[PhysNode, ...]:
        return (self.build, self.probe)

    def output_columns(self) -> tuple[str, ...]:
        return self.probe.output_columns() + self.build.output_columns()

    def describe(self) -> str:
        keys = ", ".join(
            f"{b.sql()}={p.sql()}"
            for b, p in zip(self.build_keys, self.probe_keys)
        )
        mode = "broadcast" if self.broadcast_build else "partitioned"
        return f"HashJoin({keys}; {mode})"


class AggMode(enum.Enum):
    """Aggregation phase: single-node logical mode or distributed phases."""

    SINGLE = "single"  # one full aggregation (no pre-agg split)
    PARTIAL = "partial"  # streaming local pre-aggregation
    FINAL = "final"  # merge of partial states (pipeline breaker)


@dataclass
class PhysAggregate(PhysNode):
    child: PhysNode
    group_keys: tuple[ColumnRef, ...]
    aggregates: tuple[AggCall, ...]
    agg_names: tuple[str, ...]
    mode: AggMode = AggMode.SINGLE

    def __post_init__(self) -> None:
        if len(self.aggregates) != len(self.agg_names):
            raise PlanError("aggregate exprs/names length mismatch")

    def children(self) -> tuple[PhysNode, ...]:
        return (self.child,)

    def output_columns(self) -> tuple[str, ...]:
        return tuple(k.name for k in self.group_keys) + self.agg_names

    def describe(self) -> str:
        keys = ",".join(k.name for k in self.group_keys) or "<global>"
        return f"Aggregate[{self.mode.value}](by={keys})"


@dataclass
class PhysSort(PhysNode):
    """Full sort (pipeline breaker); ``limit`` enables top-k short-circuit."""

    child: PhysNode
    keys: tuple[str, ...]
    ascending: tuple[bool, ...]
    limit: int | None = None

    def children(self) -> tuple[PhysNode, ...]:
        return (self.child,)

    def output_columns(self) -> tuple[str, ...]:
        return self.child.output_columns()

    def describe(self) -> str:
        keys = ", ".join(
            f"{k} {'ASC' if a else 'DESC'}" for k, a in zip(self.keys, self.ascending)
        )
        topk = f" limit={self.limit}" if self.limit is not None else ""
        return f"Sort({keys}{topk})"


@dataclass
class PhysLimit(PhysNode):
    child: PhysNode
    limit: int

    def children(self) -> tuple[PhysNode, ...]:
        return (self.child,)

    def output_columns(self) -> tuple[str, ...]:
        return self.child.output_columns()

    def describe(self) -> str:
        return f"Limit({self.limit})"


def walk_physical(node: PhysNode) -> Iterator[PhysNode]:
    """Pre-order traversal of a physical plan."""
    yield node
    for child in node.children():
        yield from walk_physical(child)


def plan_signature(node: PhysNode) -> str:
    """Stable structural string for plan-equality assertions in tests."""
    parts = [node.describe()]
    for child in node.children():
        parts.append(plan_signature(child))
    return "(" + " ".join(parts) + ")"
