"""Pipeline decomposition of physical plans.

The unit of DOP assignment in the paper is the *pipeline* (execution
stage): a maximal chain of streaming operators between pipeline breakers.
Breakers are hash-join builds, blocking aggregations, and sorts.
Exchanges are streaming operators and stay inside a pipeline — the paper
explicitly avoids "clean cuts" at shuffle boundaries (§3.3).

Execution/cost semantics encoded here (shared by the analytic estimator
and the discrete-event simulator):

- A pipeline may start only when all its *blocking* dependencies have
  finished (paper §3.2: "a pipeline cannot start until all of its
  dependent pipelines are complete").
- A breaker pipeline's nodes hold materialized state (hash table, sorted
  runs, aggregate groups) and remain leased — idle but billed — until the
  consuming pipeline starts and takes the nodes over.  The gap between a
  producer finishing and its consumer starting is the "resource waste due
  to pipeline waiting" the co-finish heuristic minimizes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import PlanError
from repro.plan.physical import (
    AggMode,
    PhysAggregate,
    PhysExchange,
    PhysFilter,
    PhysHashJoin,
    PhysLimit,
    PhysNode,
    PhysProject,
    PhysScan,
    PhysSort,
)

#: Roles an operator can play within a pipeline (costing differs by role).
ROLE_SOURCE_SCAN = "source_scan"
ROLE_SOURCE_STATE = "source_state"
ROLE_STREAM = "stream"
ROLE_BUILD = "build"
ROLE_PROBE = "probe"
ROLE_SINK_AGG = "sink_agg"
ROLE_SINK_SORT = "sink_sort"


@dataclass(frozen=True)
class PipelineOp:
    """One operator occurrence inside a pipeline.

    The same :class:`PhysNode` can occur in two pipelines with different
    roles (a hash join is the ``build`` sink of one pipeline and a
    ``probe`` stream op of another).
    """

    node: PhysNode
    role: str


@dataclass(eq=False)
class Pipeline:
    """A maximal streaming operator chain with blocking dependencies.

    Identity semantics (``eq=False``): pipelines are compared and hashed
    by object identity so the estimator's timing cache can key weak
    per-pipeline memos on them.
    """

    pipeline_id: int
    ops: list[PipelineOp] = field(default_factory=list)
    blocking_deps: list[int] = field(default_factory=list)
    consumer_id: int | None = None

    @property
    def is_root(self) -> bool:
        return self.consumer_id is None

    @property
    def source(self) -> PipelineOp:
        if not self.ops:
            raise PlanError(f"pipeline {self.pipeline_id} has no operators")
        return self.ops[0]

    @property
    def sink(self) -> PipelineOp:
        if not self.ops:
            raise PlanError(f"pipeline {self.pipeline_id} has no operators")
        return self.ops[-1]

    def describe(self) -> str:
        chain = " -> ".join(
            f"{op.node.describe()}[{op.role}]" for op in self.ops
        )
        deps = f" deps={self.blocking_deps}" if self.blocking_deps else ""
        return f"P{self.pipeline_id}: {chain}{deps}"


@dataclass(eq=False)
class PipelineDag:
    """All pipelines of one query plus the root (result-producing) one.

    Hashed by identity (``eq=False``) so per-DAG derived facts (e.g. the
    estimator's scan-request fees) can live in weak caches.
    """

    pipelines: dict[int, Pipeline]
    root_id: int
    _topo: list[Pipeline] | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        self._check_acyclic()

    @property
    def root(self) -> Pipeline:
        return self.pipelines[self.root_id]

    def pipeline(self, pipeline_id: int) -> Pipeline:
        try:
            return self.pipelines[pipeline_id]
        except KeyError:
            raise PlanError(f"unknown pipeline {pipeline_id}") from None

    def __len__(self) -> int:
        return len(self.pipelines)

    def __iter__(self) -> Iterator[Pipeline]:
        return iter(self.pipelines.values())

    def topological_order(self) -> list[Pipeline]:
        """Pipelines ordered so every blocking dep precedes its consumer.

        Memoized — the structure is fixed after decomposition and the
        estimator's scheduler asks once per candidate evaluation.  Treat
        the returned list as read-only.
        """
        if self._topo is not None:
            return self._topo
        order: list[Pipeline] = []
        visited: set[int] = set()

        def visit(pid: int) -> None:
            if pid in visited:
                return
            visited.add(pid)
            for dep in self.pipelines[pid].blocking_deps:
                visit(dep)
            order.append(self.pipelines[pid])

        for pid in self.pipelines:
            visit(pid)
        self._topo = order
        return order

    def siblings(self, pipeline_id: int) -> list[Pipeline]:
        """Pipelines sharing a consumer with ``pipeline_id`` (incl. itself).

        These are the "(concurrent) dependent pipelines" the co-finish
        heuristic equalizes.
        """
        me = self.pipeline(pipeline_id)
        if me.consumer_id is None:
            return [me]
        consumer = self.pipeline(me.consumer_id)
        return [self.pipelines[dep] for dep in consumer.blocking_deps]

    def _check_acyclic(self) -> None:
        state: dict[int, int] = {}  # 0=unvisited,1=in-stack,2=done

        def visit(pid: int) -> None:
            if state.get(pid) == 1:
                raise PlanError(f"pipeline dependency cycle at {pid}")
            if state.get(pid) == 2:
                return
            state[pid] = 1
            for dep in self.pipelines[pid].blocking_deps:
                if dep not in self.pipelines:
                    raise PlanError(f"pipeline {pid} depends on unknown {dep}")
                visit(dep)
            state[pid] = 2

        for pid in self.pipelines:
            visit(pid)

    def describe(self) -> str:
        return "\n".join(p.describe() for p in self.topological_order())


def decompose_pipelines(root: PhysNode) -> PipelineDag:
    """Split a physical plan into its pipeline DAG."""
    counter = itertools.count(0)
    pipelines: dict[int, Pipeline] = {}

    def new_pipeline() -> Pipeline:
        pipeline = Pipeline(pipeline_id=next(counter))
        pipelines[pipeline.pipeline_id] = pipeline
        return pipeline

    def stream(node: PhysNode) -> Pipeline:
        """Return the open pipeline whose stream ends at ``node``'s output."""
        if isinstance(node, PhysScan):
            pipeline = new_pipeline()
            pipeline.ops.append(PipelineOp(node, ROLE_SOURCE_SCAN))
            return pipeline

        if isinstance(node, (PhysFilter, PhysProject, PhysExchange, PhysLimit)):
            pipeline = stream(node.child)
            pipeline.ops.append(PipelineOp(node, ROLE_STREAM))
            return pipeline

        if isinstance(node, PhysAggregate):
            if node.mode is AggMode.PARTIAL:
                pipeline = stream(node.child)
                pipeline.ops.append(PipelineOp(node, ROLE_STREAM))
                return pipeline
            producer = stream(node.child)
            producer.ops.append(PipelineOp(node, ROLE_SINK_AGG))
            consumer = new_pipeline()
            consumer.ops.append(PipelineOp(node, ROLE_SOURCE_STATE))
            consumer.blocking_deps.append(producer.pipeline_id)
            producer.consumer_id = consumer.pipeline_id
            return consumer

        if isinstance(node, PhysSort):
            producer = stream(node.child)
            producer.ops.append(PipelineOp(node, ROLE_SINK_SORT))
            consumer = new_pipeline()
            consumer.ops.append(PipelineOp(node, ROLE_SOURCE_STATE))
            consumer.blocking_deps.append(producer.pipeline_id)
            producer.consumer_id = consumer.pipeline_id
            return consumer

        if isinstance(node, PhysHashJoin):
            build_pipeline = stream(node.build)
            build_pipeline.ops.append(PipelineOp(node, ROLE_BUILD))
            probe_pipeline = stream(node.probe)
            probe_pipeline.ops.append(PipelineOp(node, ROLE_PROBE))
            probe_pipeline.blocking_deps.append(build_pipeline.pipeline_id)
            build_pipeline.consumer_id = probe_pipeline.pipeline_id
            return probe_pipeline

        raise PlanError(f"cannot decompose operator {type(node).__name__}")

    root_pipeline = stream(root)
    return PipelineDag(pipelines=pipelines, root_id=root_pipeline.pipeline_id)
