"""Predicate analysis shared by pruning, cardinality estimation, and scans.

Extracts per-column value ranges from conjunctive predicates so that
zone-map pruning (storage), selectivity estimation (optimizer), and the
local engine's scan all interpret a predicate identically.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.plan.expressions import (
    BinaryOp,
    ColumnRef,
    Expr,
    InList,
    Literal,
    conjuncts,
)


@dataclass
class ColumnRange:
    """Closed-interval constraint on one column; None = unbounded."""

    lo: float | None = None
    hi: float | None = None

    def tighten_lo(self, value: float) -> None:
        self.lo = value if self.lo is None else max(self.lo, value)

    def tighten_hi(self, value: float) -> None:
        self.hi = value if self.hi is None else min(self.hi, value)

    @property
    def is_empty(self) -> bool:
        return self.lo is not None and self.hi is not None and self.lo > self.hi


def extract_column_ranges(predicate: Expr | None) -> dict[str, ColumnRange]:
    """Per-column [lo, hi] ranges implied by the AND-ed comparisons.

    Only simple ``column <op> literal`` conjuncts contribute; other
    conjuncts (IN lists, disjunctions, arithmetic) are ignored — the
    ranges are a *sound over-approximation* for pruning: a partition
    outside a range can never satisfy the predicate.
    """
    ranges: dict[str, ColumnRange] = {}
    for conjunct in conjuncts(predicate):
        simple = _as_simple_comparison(conjunct)
        if simple is None:
            continue
        column, op, value = simple
        column_range = ranges.setdefault(column, ColumnRange())
        if op == "=":
            column_range.tighten_lo(value)
            column_range.tighten_hi(value)
        elif op in ("<", "<="):
            column_range.tighten_hi(value)
        elif op in (">", ">="):
            column_range.tighten_lo(value)
    return ranges


def _as_simple_comparison(expr: Expr) -> tuple[str, str, float] | None:
    """Decompose ``col <op> literal`` (either orientation) if possible."""
    if not isinstance(expr, BinaryOp):
        return None
    op = expr.op
    if op not in ("=", "<", "<=", ">", ">="):
        return None
    left, right = expr.left, expr.right
    if isinstance(left, ColumnRef) and isinstance(right, Literal):
        if isinstance(right.value, str):
            return None
        return (left.name, op, float(right.value))
    if isinstance(left, Literal) and isinstance(right, ColumnRef):
        if isinstance(left.value, str):
            return None
        flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "="}[op]
        return (right.name, flipped, float(left.value))
    return None


def in_list_values(expr: Expr) -> tuple[str, tuple[float, ...]] | None:
    """Decompose a positive IN-list over a plain column, if possible."""
    if isinstance(expr, InList) and not expr.negated:
        if isinstance(expr.operand, ColumnRef):
            values = tuple(float(v) for v in expr.values if not isinstance(v, str))
            if len(values) == len(expr.values):
                return (expr.operand.name, values)
    return None
