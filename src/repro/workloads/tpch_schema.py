"""TPC-H-like schema definitions.

A scaled-down TPC-H: the eight standard tables with the columns the query
templates use.  Free-text columns (names, comments) are omitted — they
contribute storage bytes but never predicates in our workloads; low-
cardinality categorical columns keep sorted string dictionaries.
"""

from __future__ import annotations

from repro.catalog.schema import Column, DataType, TableSchema

_I = DataType.INT64
_F = DataType.FLOAT64
_S = DataType.STRING
_D = DataType.DATE


TPCH_SCHEMAS: dict[str, TableSchema] = {
    "region": TableSchema(
        "region",
        (
            Column("r_regionkey", _I),
            Column("r_name", _S),
        ),
        primary_key=("r_regionkey",),
    ),
    "nation": TableSchema(
        "nation",
        (
            Column("n_nationkey", _I),
            Column("n_name", _S),
            Column("n_regionkey", _I),
        ),
        primary_key=("n_nationkey",),
    ),
    "supplier": TableSchema(
        "supplier",
        (
            Column("s_suppkey", _I),
            Column("s_nationkey", _I),
            Column("s_acctbal", _F),
        ),
        primary_key=("s_suppkey",),
    ),
    "customer": TableSchema(
        "customer",
        (
            Column("c_custkey", _I),
            Column("c_nationkey", _I),
            Column("c_acctbal", _F),
            Column("c_mktsegment", _S),
        ),
        primary_key=("c_custkey",),
    ),
    "part": TableSchema(
        "part",
        (
            Column("p_partkey", _I),
            Column("p_brand", _S),
            Column("p_type", _S),
            Column("p_size", _I),
            Column("p_retailprice", _F),
        ),
        primary_key=("p_partkey",),
    ),
    "partsupp": TableSchema(
        "partsupp",
        (
            Column("ps_partkey", _I),
            Column("ps_suppkey", _I),
            Column("ps_availqty", _I),
            Column("ps_supplycost", _F),
        ),
        primary_key=("ps_partkey", "ps_suppkey"),
    ),
    "orders": TableSchema(
        "orders",
        (
            Column("o_orderkey", _I),
            Column("o_custkey", _I),
            Column("o_orderstatus", _S),
            Column("o_totalprice", _F),
            Column("o_orderdate", _D),
            Column("o_orderpriority", _S),
        ),
        primary_key=("o_orderkey",),
    ),
    "lineitem": TableSchema(
        "lineitem",
        (
            Column("l_orderkey", _I),
            Column("l_partkey", _I),
            Column("l_suppkey", _I),
            Column("l_quantity", _F),
            Column("l_extendedprice", _F),
            Column("l_discount", _F),
            Column("l_tax", _F),
            Column("l_returnflag", _S),
            Column("l_linestatus", _S),
            Column("l_shipdate", _D),
            Column("l_commitdate", _D),
            Column("l_receiptdate", _D),
            Column("l_shipmode", _S),
        ),
    ),
}


#: Sorted dictionaries for STRING columns (code = index in tuple).
TPCH_DICTIONARIES: dict[str, dict[str, tuple[str, ...]]] = {
    "region": {
        "r_name": ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"),
    },
    "nation": {
        "n_name": tuple(
            sorted(
                (
                    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "CHINA",
                    "EGYPT", "ETHIOPIA", "FRANCE", "GERMANY", "INDIA",
                    "INDONESIA", "IRAN", "IRAQ", "JAPAN", "JORDAN",
                    "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "ROMANIA",
                    "RUSSIA", "SAUDI ARABIA", "UNITED KINGDOM",
                    "UNITED STATES", "VIETNAM",
                )
            )
        ),
    },
    "customer": {
        "c_mktsegment": (
            "AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY",
        ),
    },
    "part": {
        "p_brand": tuple(sorted(f"Brand#{m}{n}" for m in range(1, 6) for n in range(1, 6))),
        "p_type": tuple(
            sorted(
                f"{a} {b} {c}"
                for a in ("ECONOMY", "LARGE", "MEDIUM", "PROMO", "SMALL", "STANDARD")
                for b in ("ANODIZED", "BRUSHED", "BURNISHED", "PLATED", "POLISHED")
                for c in ("BRASS", "COPPER", "NICKEL", "STEEL", "TIN")
            )
        ),
    },
    "orders": {
        "o_orderstatus": ("F", "O", "P"),
        "o_orderpriority": (
            "1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW",
        ),
    },
    "lineitem": {
        "l_returnflag": ("A", "N", "R"),
        "l_linestatus": ("F", "O"),
        "l_shipmode": ("AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"),
    },
}


#: Base (scale factor 1.0) row counts, mirroring TPC-H proportions.
BASE_ROW_COUNTS: dict[str, int] = {
    "region": 5,
    "nation": 25,
    "supplier": 10_000,
    "customer": 150_000,
    "part": 200_000,
    "partsupp": 800_000,
    "orders": 1_500_000,
    "lineitem": 6_000_000,
}

#: Date domain: TPC-H uses 1992-01-01 .. 1998-12-31 (epoch days).
DATE_MIN = 8036  # 1992-01-01
DATE_MAX = 10591  # 1998-12-31
