"""Query arrival processes for workload simulation and forecasting.

The Statistics Service's forecaster (§4) is evaluated against synthetic
workload streams: Poisson arrivals model ad-hoc traffic, periodic
arrivals model scheduled reports (daily dashboards, hourly rollups).
All times are in seconds from the stream's origin.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import WorkloadError
from repro.util.rng import derive_rng


@dataclass(frozen=True)
class Arrival:
    """One query submission event."""

    time: float
    template: str


class ArrivalProcess:
    """Base class: yields arrivals within [0, horizon)."""

    def arrivals(self, horizon: float) -> Iterator[Arrival]:
        raise NotImplementedError


class PoissonArrivals(ArrivalProcess):
    """Memoryless arrivals at ``rate_per_hour`` for one template."""

    def __init__(self, template: str, rate_per_hour: float, seed: int = 0) -> None:
        if rate_per_hour <= 0:
            raise WorkloadError(f"rate must be positive, got {rate_per_hour}")
        self.template = template
        self.rate_per_hour = rate_per_hour
        self._seed = seed

    def arrivals(self, horizon: float) -> Iterator[Arrival]:
        rng = derive_rng(self._seed, "poisson", self.template)
        mean_gap = 3600.0 / self.rate_per_hour
        now = float(rng.exponential(mean_gap))
        while now < horizon:
            yield Arrival(time=now, template=self.template)
            now += float(rng.exponential(mean_gap))


class PeriodicArrivals(ArrivalProcess):
    """Scheduled arrivals every ``period_s`` with optional jitter."""

    def __init__(
        self,
        template: str,
        period_s: float,
        *,
        offset_s: float = 0.0,
        jitter_s: float = 0.0,
        seed: int = 0,
    ) -> None:
        if period_s <= 0:
            raise WorkloadError(f"period must be positive, got {period_s}")
        self.template = template
        self.period_s = period_s
        self.offset_s = offset_s
        self.jitter_s = jitter_s
        self._seed = seed

    def arrivals(self, horizon: float) -> Iterator[Arrival]:
        rng = derive_rng(self._seed, "periodic", self.template)
        now = self.offset_s
        while now < horizon:
            jitter = float(rng.uniform(-self.jitter_s, self.jitter_s)) if self.jitter_s else 0.0
            time = max(0.0, now + jitter)
            if time < horizon:
                yield Arrival(time=time, template=self.template)
            now += self.period_s


def merge_arrivals(processes: list[ArrivalProcess], horizon: float) -> list[Arrival]:
    """Merge several processes into one time-ordered stream."""
    merged: list[Arrival] = []
    for process in processes:
        merged.extend(process.arrivals(horizon))
    merged.sort(key=lambda a: a.time)
    return merged
