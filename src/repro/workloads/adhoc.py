"""Ad-hoc query generator.

Data scientists issue one-off queries that no forecaster has seen before
(paper §3.1 argues cost estimation must not depend on recurring-workload
training).  This generator emits random-but-valid star-join queries over
the TPC-H-like schema: a random fact table, a random subset of its
dimension joins, random range predicates, and a random aggregate.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import derive_rng
from repro.workloads.tpch_queries import _date  # shared date formatting

#: fact table -> joinable (dimension, fact_key, dim_key) triples.
_JOINABLE: dict[str, list[tuple[str, str, str]]] = {
    "lineitem": [
        ("orders", "l_orderkey", "o_orderkey"),
        ("part", "l_partkey", "p_partkey"),
        ("supplier", "l_suppkey", "s_suppkey"),
    ],
    "orders": [
        ("customer", "o_custkey", "c_custkey"),
    ],
    "partsupp": [
        ("part", "ps_partkey", "p_partkey"),
        ("supplier", "ps_suppkey", "s_suppkey"),
    ],
}

#: numeric columns usable in range predicates, with (lo, hi) domains.
_RANGE_COLUMNS: dict[str, list[tuple[str, float, float]]] = {
    "lineitem": [
        ("l_quantity", 1, 50),
        ("l_discount", 0.0, 0.1),
        ("l_extendedprice", 900.0, 105_000.0),
    ],
    "orders": [
        ("o_totalprice", 850.0, 450_000.0),
    ],
    "partsupp": [
        ("ps_availqty", 1, 10_000),
        ("ps_supplycost", 1.0, 1000.0),
    ],
    "part": [
        ("p_size", 1, 50),
        ("p_retailprice", 900.0, 2100.0),
    ],
    "customer": [
        ("c_acctbal", -999.0, 9999.0),
    ],
    "supplier": [
        ("s_acctbal", -999.0, 9999.0),
    ],
}

#: aggregate targets per fact table.
_AGG_COLUMNS: dict[str, list[str]] = {
    "lineitem": ["l_extendedprice", "l_quantity"],
    "orders": ["o_totalprice"],
    "partsupp": ["ps_supplycost"],
}

#: group-by candidates (low-cardinality columns) per table.
_GROUP_COLUMNS: dict[str, list[str]] = {
    "lineitem": ["l_returnflag", "l_shipmode"],
    "orders": ["o_orderpriority", "o_orderstatus"],
    "customer": ["c_mktsegment"],
    "part": ["p_brand"],
    "supplier": ["s_nationkey"],
    "partsupp": [],
}


class AdhocQueryGenerator:
    """Generates random analytical queries; deterministic per seed."""

    def __init__(self, seed: int = 7) -> None:
        self._seed = seed
        self._counter = 0

    def next_query(self) -> str:
        rng = derive_rng(self._seed, "adhoc", str(self._counter))
        self._counter += 1
        return self._generate(rng)

    def batch(self, count: int) -> list[str]:
        return [self.next_query() for _ in range(count)]

    def _generate(self, rng: np.random.Generator) -> str:
        fact = str(rng.choice(list(_JOINABLE)))
        joins = _JOINABLE[fact]
        num_joins = int(rng.integers(0, len(joins) + 1))
        picked = [joins[i] for i in rng.choice(len(joins), size=num_joins, replace=False)]

        tables = [fact] + [dim for dim, _, _ in picked]
        join_predicates = [
            f"{fact_key} = {dim_key}" for _, fact_key, dim_key in picked
        ]

        predicates = list(join_predicates)
        for table in tables:
            for column, lo, hi in _RANGE_COLUMNS.get(table, []):
                if rng.random() < 0.4:
                    width = (hi - lo) * float(rng.uniform(0.05, 0.5))
                    start = float(rng.uniform(lo, hi - width))
                    predicates.append(
                        f"{column} BETWEEN {start:.2f} AND {start + width:.2f}"
                    )
        if fact == "lineitem" and rng.random() < 0.5:
            start = int(rng.integers(-700, 600))
            predicates.append(f"l_shipdate >= DATE '{_date(start)}'")
            predicates.append(f"l_shipdate < DATE '{_date(start + 180)}'")

        agg_column = str(rng.choice(_AGG_COLUMNS[fact]))
        agg_func = str(rng.choice(["sum", "avg", "min", "max"]))

        group_candidates = [
            column for table in tables for column in _GROUP_COLUMNS.get(table, [])
        ]
        group_by = ""
        select_prefix = ""
        if group_candidates and rng.random() < 0.7:
            group_column = str(rng.choice(group_candidates))
            select_prefix = f"{group_column}, "
            group_by = f" GROUP BY {group_column}"

        sql = (
            f"SELECT {select_prefix}{agg_func}({agg_column}) AS metric, "
            f"count(*) AS rows_in "
            f"FROM {', '.join(tables)}"
        )
        if predicates:
            sql += " WHERE " + " AND ".join(predicates)
        sql += group_by
        return sql
