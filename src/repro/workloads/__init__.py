"""Workload substrate: TPC-H-like schema/data, query templates, arrivals.

Substitutes for the customer workloads a production warehouse sees: a
deterministic synthetic decision-support database plus parameterized
recurring query templates and an ad-hoc query generator, with arrival
processes for workload-forecasting experiments.
"""

from repro.workloads.tpch_schema import TPCH_SCHEMAS, TPCH_DICTIONARIES
from repro.workloads.tpch_data import generate_tpch, load_tpch
from repro.workloads.tpch_queries import QUERY_TEMPLATES, instantiate, template_names
from repro.workloads.adhoc import AdhocQueryGenerator
from repro.workloads.arrivals import ArrivalProcess, PeriodicArrivals, PoissonArrivals

__all__ = [
    "TPCH_SCHEMAS",
    "TPCH_DICTIONARIES",
    "generate_tpch",
    "load_tpch",
    "QUERY_TEMPLATES",
    "instantiate",
    "template_names",
    "AdhocQueryGenerator",
    "ArrivalProcess",
    "PoissonArrivals",
    "PeriodicArrivals",
]
