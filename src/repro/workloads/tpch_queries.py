"""Parameterized TPC-H-flavoured query templates.

Each template is a recurring "report" in the warehouse workload: the SQL
shape is fixed, parameters vary per instantiation.  Template identity is
what the Statistics Service's forecaster keys on (§4).  Shapes follow the
TPC-H queries they are named after, adapted to the supported SQL subset
(no subqueries, no CASE, no LIKE).
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import WorkloadError
from repro.util.rng import derive_rng
from repro.workloads.tpch_schema import TPCH_DICTIONARIES


def _date(days_from_1995: int) -> str:
    base = datetime.date(1995, 1, 1)
    return (base + datetime.timedelta(days=days_from_1995)).isoformat()


@dataclass(frozen=True)
class QueryTemplate:
    """A named SQL template with a parameter sampler."""

    name: str
    description: str
    tables: tuple[str, ...]
    sql_template: str
    param_sampler: Callable[[np.random.Generator], dict[str, object]]

    def instantiate(self, rng: np.random.Generator | None = None) -> str:
        rng = rng or np.random.default_rng(0)
        return self.sql_template.format(**self.param_sampler(rng))


def _q1_params(rng: np.random.Generator) -> dict[str, object]:
    return {"ship_cutoff": _date(int(rng.integers(900, 1300)))}


def _q3_params(rng: np.random.Generator) -> dict[str, object]:
    segments = TPCH_DICTIONARIES["customer"]["c_mktsegment"]
    return {
        "segment": str(rng.choice(list(segments))),
        "pivot": _date(int(rng.integers(60, 120))),
    }


def _q5_params(rng: np.random.Generator) -> dict[str, object]:
    regions = TPCH_DICTIONARIES["region"]["r_name"]
    start = int(rng.integers(-700, 500))
    return {
        "region": str(rng.choice(list(regions))),
        "start": _date(start),
        "end": _date(start + 365),
    }


def _q6_params(rng: np.random.Generator) -> dict[str, object]:
    start = int(rng.integers(-700, 600))
    discount = float(rng.uniform(0.02, 0.08))
    return {
        "start": _date(start),
        "end": _date(start + 365),
        "discount_lo": round(discount - 0.01, 2),
        "discount_hi": round(discount + 0.01, 2),
        "quantity": int(rng.integers(24, 26)),
    }


def _q10_params(rng: np.random.Generator) -> dict[str, object]:
    start = int(rng.integers(-700, 600))
    return {"start": _date(start), "end": _date(start + 90)}


def _q12_params(rng: np.random.Generator) -> dict[str, object]:
    modes = TPCH_DICTIONARIES["lineitem"]["l_shipmode"]
    pick = rng.choice(len(modes), size=2, replace=False)
    start = int(rng.integers(-700, 500))
    return {
        "mode1": modes[pick[0]],
        "mode2": modes[pick[1]],
        "start": _date(start),
        "end": _date(start + 365),
    }


def _q14_params(rng: np.random.Generator) -> dict[str, object]:
    start = int(rng.integers(-700, 600))
    return {"start": _date(start), "end": _date(start + 30)}


def _q18_params(rng: np.random.Generator) -> dict[str, object]:
    return {"min_total": int(rng.integers(300_000, 400_000))}


def _q19_params(rng: np.random.Generator) -> dict[str, object]:
    brands = TPCH_DICTIONARIES["part"]["p_brand"]
    return {
        "brand": str(rng.choice(list(brands))),
        "quantity_lo": int(rng.integers(1, 11)),
        "quantity_hi": int(rng.integers(20, 31)),
    }


def _scan_orders_params(rng: np.random.Generator) -> dict[str, object]:
    return {"min_price": float(rng.uniform(100_000, 400_000))}


QUERY_TEMPLATES: dict[str, QueryTemplate] = {
    "q1_pricing_summary": QueryTemplate(
        name="q1_pricing_summary",
        description="Pricing summary report: heavy scan + wide aggregation",
        tables=("lineitem",),
        sql_template=(
            "SELECT l_returnflag, l_linestatus, "
            "sum(l_quantity) AS sum_qty, "
            "sum(l_extendedprice) AS sum_base_price, "
            "sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
            "avg(l_quantity) AS avg_qty, count(*) AS count_order "
            "FROM lineitem WHERE l_shipdate <= DATE '{ship_cutoff}' "
            "GROUP BY l_returnflag, l_linestatus "
            "ORDER BY l_returnflag, l_linestatus"
        ),
        param_sampler=_q1_params,
    ),
    "q3_shipping_priority": QueryTemplate(
        name="q3_shipping_priority",
        description="Top unshipped orders by revenue for a market segment",
        tables=("customer", "orders", "lineitem"),
        sql_template=(
            "SELECT l_orderkey, sum(l_extendedprice * (1 - l_discount)) AS revenue, "
            "o_orderdate "
            "FROM customer, orders, lineitem "
            "WHERE c_mktsegment = '{segment}' AND c_custkey = o_custkey "
            "AND l_orderkey = o_orderkey AND o_orderdate < DATE '{pivot}' "
            "AND l_shipdate > DATE '{pivot}' "
            "GROUP BY l_orderkey, o_orderdate "
            "ORDER BY revenue DESC LIMIT 10"
        ),
        param_sampler=_q3_params,
    ),
    "q5_local_supplier": QueryTemplate(
        name="q5_local_supplier",
        description="Revenue by nation within a region (6-table join)",
        tables=("customer", "orders", "lineitem", "supplier", "nation", "region"),
        sql_template=(
            "SELECT n_name, sum(l_extendedprice * (1 - l_discount)) AS revenue "
            "FROM customer, orders, lineitem, supplier, nation, region "
            "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
            "AND l_suppkey = s_suppkey AND c_nationkey = s_nationkey "
            "AND s_nationkey = n_nationkey AND n_regionkey = r_regionkey "
            "AND r_name = '{region}' AND o_orderdate >= DATE '{start}' "
            "AND o_orderdate < DATE '{end}' "
            "GROUP BY n_name ORDER BY revenue DESC"
        ),
        param_sampler=_q5_params,
    ),
    "q6_revenue_forecast": QueryTemplate(
        name="q6_revenue_forecast",
        description="Selective single-table scan with tight predicates",
        tables=("lineitem",),
        sql_template=(
            "SELECT sum(l_extendedprice * l_discount) AS revenue "
            "FROM lineitem "
            "WHERE l_shipdate >= DATE '{start}' AND l_shipdate < DATE '{end}' "
            "AND l_discount BETWEEN {discount_lo} AND {discount_hi} "
            "AND l_quantity < {quantity}"
        ),
        param_sampler=_q6_params,
    ),
    "q10_returned_items": QueryTemplate(
        name="q10_returned_items",
        description="Customers who returned items, ranked by lost revenue",
        tables=("customer", "orders", "lineitem", "nation"),
        sql_template=(
            "SELECT c_custkey, n_name, "
            "sum(l_extendedprice * (1 - l_discount)) AS revenue "
            "FROM customer, orders, lineitem, nation "
            "WHERE c_custkey = o_custkey AND l_orderkey = o_orderkey "
            "AND o_orderdate >= DATE '{start}' AND o_orderdate < DATE '{end}' "
            "AND l_returnflag = 'R' AND c_nationkey = n_nationkey "
            "GROUP BY c_custkey, n_name "
            "ORDER BY revenue DESC LIMIT 20"
        ),
        param_sampler=_q10_params,
    ),
    "q12_shipmode": QueryTemplate(
        name="q12_shipmode",
        description="Order counts by ship mode with date-window filter",
        tables=("orders", "lineitem"),
        sql_template=(
            "SELECT l_shipmode, count(*) AS order_count, "
            "sum(o_totalprice) AS total_price "
            "FROM orders, lineitem "
            "WHERE o_orderkey = l_orderkey "
            "AND l_shipmode IN ('{mode1}', '{mode2}') "
            "AND l_receiptdate >= DATE '{start}' AND l_receiptdate < DATE '{end}' "
            "GROUP BY l_shipmode ORDER BY l_shipmode"
        ),
        param_sampler=_q12_params,
    ),
    "q14_promo_effect": QueryTemplate(
        name="q14_promo_effect",
        description="Revenue by part type over a one-month ship window",
        tables=("lineitem", "part"),
        sql_template=(
            "SELECT p_type, sum(l_extendedprice * (1 - l_discount)) AS revenue "
            "FROM lineitem, part "
            "WHERE l_partkey = p_partkey "
            "AND l_shipdate >= DATE '{start}' AND l_shipdate < DATE '{end}' "
            "GROUP BY p_type ORDER BY revenue DESC LIMIT 25"
        ),
        param_sampler=_q14_params,
    ),
    "q18_large_orders": QueryTemplate(
        name="q18_large_orders",
        description="Large-volume customers (join + heavy group-by)",
        tables=("customer", "orders"),
        sql_template=(
            "SELECT c_custkey, count(*) AS order_count, "
            "sum(o_totalprice) AS total_spent "
            "FROM customer, orders "
            "WHERE c_custkey = o_custkey AND o_totalprice > {min_total} "
            "GROUP BY c_custkey ORDER BY total_spent DESC LIMIT 100"
        ),
        param_sampler=_q18_params,
    ),
    "q19_discounted_parts": QueryTemplate(
        name="q19_discounted_parts",
        description="Revenue for a brand within quantity bounds",
        tables=("lineitem", "part"),
        sql_template=(
            "SELECT sum(l_extendedprice * (1 - l_discount)) AS revenue "
            "FROM lineitem, part "
            "WHERE p_partkey = l_partkey AND p_brand = '{brand}' "
            "AND l_quantity BETWEEN {quantity_lo} AND {quantity_hi} "
            "AND l_shipmode IN ('AIR', 'REG AIR')"
        ),
        param_sampler=_q19_params,
    ),
    "scan_orders": QueryTemplate(
        name="scan_orders",
        description="Embarrassingly parallel filtered scan (no exchange)",
        tables=("orders",),
        sql_template=(
            "SELECT count(*) AS big_orders FROM orders "
            "WHERE o_totalprice > {min_price}"
        ),
        param_sampler=_scan_orders_params,
    ),
}


def template_names() -> tuple[str, ...]:
    return tuple(QUERY_TEMPLATES)


def instantiate(name: str, seed: int = 0) -> str:
    """Instantiate template ``name`` with seed-derived parameters."""
    try:
        template = QUERY_TEMPLATES[name]
    except KeyError:
        known = ", ".join(sorted(QUERY_TEMPLATES))
        raise WorkloadError(f"unknown template {name!r}; known: {known}") from None
    return template.instantiate(derive_rng(seed, "template", name))
