"""Deterministic TPC-H-like data generation.

Generates numpy column arrays per table at a given scale factor.  Value
distributions follow the TPC-H spirit (uniform keys, skew-free prices,
date-correlated ship/commit/receipt dates) without reproducing the spec's
text grammar.  Generation is fully determined by the seed.
"""

from __future__ import annotations

import numpy as np

from repro.engine.database import Database
from repro.errors import WorkloadError
from repro.storage.micropartition import DEFAULT_PARTITION_ROWS
from repro.util.rng import derive_rng
from repro.workloads.tpch_schema import (
    BASE_ROW_COUNTS,
    DATE_MAX,
    DATE_MIN,
    TPCH_DICTIONARIES,
    TPCH_SCHEMAS,
)


def _rows(table: str, scale_factor: float) -> int:
    base = BASE_ROW_COUNTS[table]
    if table in ("region", "nation"):
        return base
    return max(1, int(round(base * scale_factor)))


def generate_tpch(
    scale_factor: float = 0.01, seed: int = 42
) -> dict[str, dict[str, np.ndarray]]:
    """Generate all eight tables; returns table -> column -> array."""
    if scale_factor <= 0:
        raise WorkloadError(f"scale factor must be positive, got {scale_factor}")

    data: dict[str, dict[str, np.ndarray]] = {}

    n_region = _rows("region", scale_factor)
    n_nation = _rows("nation", scale_factor)
    n_supplier = _rows("supplier", scale_factor)
    n_customer = _rows("customer", scale_factor)
    n_part = _rows("part", scale_factor)
    n_partsupp = _rows("partsupp", scale_factor)
    n_orders = _rows("orders", scale_factor)
    n_lineitem = _rows("lineitem", scale_factor)

    # region -------------------------------------------------------------
    data["region"] = {
        "r_regionkey": np.arange(n_region, dtype=np.int64),
        "r_name": np.arange(n_region, dtype=np.int64),
    }

    # nation -----------------------------------------------------------
    rng = derive_rng(seed, "nation")
    data["nation"] = {
        "n_nationkey": np.arange(n_nation, dtype=np.int64),
        "n_name": np.arange(n_nation, dtype=np.int64),
        "n_regionkey": rng.integers(0, n_region, size=n_nation, dtype=np.int64),
    }

    # supplier -----------------------------------------------------------
    rng = derive_rng(seed, "supplier")
    data["supplier"] = {
        "s_suppkey": np.arange(n_supplier, dtype=np.int64),
        "s_nationkey": rng.integers(0, n_nation, size=n_supplier, dtype=np.int64),
        "s_acctbal": rng.uniform(-999.99, 9999.99, size=n_supplier),
    }

    # customer -----------------------------------------------------------
    rng = derive_rng(seed, "customer")
    n_segments = len(TPCH_DICTIONARIES["customer"]["c_mktsegment"])
    data["customer"] = {
        "c_custkey": np.arange(n_customer, dtype=np.int64),
        "c_nationkey": rng.integers(0, n_nation, size=n_customer, dtype=np.int64),
        "c_acctbal": rng.uniform(-999.99, 9999.99, size=n_customer),
        "c_mktsegment": rng.integers(0, n_segments, size=n_customer, dtype=np.int64),
    }

    # part -------------------------------------------------------------
    rng = derive_rng(seed, "part")
    n_brand = len(TPCH_DICTIONARIES["part"]["p_brand"])
    n_type = len(TPCH_DICTIONARIES["part"]["p_type"])
    data["part"] = {
        "p_partkey": np.arange(n_part, dtype=np.int64),
        "p_brand": rng.integers(0, n_brand, size=n_part, dtype=np.int64),
        "p_type": rng.integers(0, n_type, size=n_part, dtype=np.int64),
        "p_size": rng.integers(1, 51, size=n_part, dtype=np.int64),
        "p_retailprice": 900.0 + rng.uniform(0.0, 1200.0, size=n_part),
    }

    # partsupp -----------------------------------------------------------
    rng = derive_rng(seed, "partsupp")
    data["partsupp"] = {
        "ps_partkey": rng.integers(0, n_part, size=n_partsupp, dtype=np.int64),
        "ps_suppkey": rng.integers(0, n_supplier, size=n_partsupp, dtype=np.int64),
        "ps_availqty": rng.integers(1, 10_000, size=n_partsupp, dtype=np.int64),
        "ps_supplycost": rng.uniform(1.0, 1000.0, size=n_partsupp),
    }

    # orders -----------------------------------------------------------
    rng = derive_rng(seed, "orders")
    n_status = len(TPCH_DICTIONARIES["orders"]["o_orderstatus"])
    n_priority = len(TPCH_DICTIONARIES["orders"]["o_orderpriority"])
    order_dates = rng.integers(DATE_MIN, DATE_MAX - 150, size=n_orders, dtype=np.int64)
    data["orders"] = {
        "o_orderkey": np.arange(n_orders, dtype=np.int64),
        # TPC-H: only two thirds of customers have orders; keep it simple
        # and uniform over all customers.
        "o_custkey": rng.integers(0, n_customer, size=n_orders, dtype=np.int64),
        "o_orderstatus": rng.integers(0, n_status, size=n_orders, dtype=np.int64),
        "o_totalprice": rng.uniform(850.0, 450_000.0, size=n_orders),
        "o_orderdate": order_dates,
        "o_orderpriority": rng.integers(0, n_priority, size=n_orders, dtype=np.int64),
    }

    # lineitem -----------------------------------------------------------
    rng = derive_rng(seed, "lineitem")
    n_flag = len(TPCH_DICTIONARIES["lineitem"]["l_returnflag"])
    n_mode = len(TPCH_DICTIONARIES["lineitem"]["l_shipmode"])
    l_orderkey = rng.integers(0, n_orders, size=n_lineitem, dtype=np.int64)
    l_quantity = rng.integers(1, 51, size=n_lineitem).astype(np.float64)
    l_partkey = rng.integers(0, n_part, size=n_lineitem, dtype=np.int64)
    part_price = data["part"]["p_retailprice"][l_partkey]
    ship_delay = rng.integers(1, 122, size=n_lineitem, dtype=np.int64)
    l_shipdate = data["orders"]["o_orderdate"][l_orderkey] + ship_delay
    commit_delay = rng.integers(30, 91, size=n_lineitem, dtype=np.int64)
    receipt_delay = rng.integers(1, 31, size=n_lineitem, dtype=np.int64)
    # l_linestatus is date-correlated in TPC-H ("O" for recent orders).
    cutoff = (DATE_MIN + DATE_MAX) // 2 + 300
    l_linestatus = (l_shipdate > cutoff).astype(np.int64)
    data["lineitem"] = {
        "l_orderkey": l_orderkey,
        "l_partkey": l_partkey,
        "l_suppkey": rng.integers(0, n_supplier, size=n_lineitem, dtype=np.int64),
        "l_quantity": l_quantity,
        "l_extendedprice": l_quantity * part_price,
        "l_discount": np.round(rng.uniform(0.0, 0.10, size=n_lineitem), 2),
        "l_tax": np.round(rng.uniform(0.0, 0.08, size=n_lineitem), 2),
        "l_returnflag": rng.integers(0, n_flag, size=n_lineitem, dtype=np.int64),
        "l_linestatus": l_linestatus,
        "l_shipdate": l_shipdate,
        "l_commitdate": l_shipdate + commit_delay - 60,
        "l_receiptdate": l_shipdate + receipt_delay,
        "l_shipmode": rng.integers(0, n_mode, size=n_lineitem, dtype=np.int64),
    }
    return data


def load_tpch(
    scale_factor: float = 0.01,
    seed: int = 42,
    *,
    partition_rows: int = DEFAULT_PARTITION_ROWS,
    cluster_keys: dict[str, str] | None = None,
    stats_sample_rate: float = 1.0,
    database: Database | None = None,
) -> Database:
    """Generate TPC-H-like data and load it into a :class:`Database`.

    ``cluster_keys`` optionally clusters tables at load time (e.g.
    ``{"lineitem": "l_shipdate"}``); unlisted tables stay in generation
    (key) order.
    """
    cluster_keys = cluster_keys or {}
    database = database or Database()
    data = generate_tpch(scale_factor, seed)
    for table_name, columns in data.items():
        database.create_table(
            TPCH_SCHEMAS[table_name],
            columns,
            dictionaries=TPCH_DICTIONARIES.get(table_name, {}),
            partition_rows=partition_rows,
            cluster_key=cluster_keys.get(table_name),
            stats_sample_rate=stats_sample_rate,
        )
    return database
