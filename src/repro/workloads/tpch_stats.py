"""Statistics-only TPC-H-like catalogs at arbitrary scale.

Provisioning experiments need *large* databases (the paper's examples
involve petabyte tables) while the planner, cost estimator, and
distributed simulator consume only catalog statistics — never rows.
This module fabricates a :class:`Catalog` with analytically-derived
statistics at any scale factor, mirroring the distributions of
:mod:`repro.workloads.tpch_data` exactly, so a laptop can plan and
simulate queries over 100 TB of synthetic data.
"""

from __future__ import annotations

import math

from repro.catalog.catalog import Catalog, TableEntry
from repro.catalog.schema import DataType, TableSchema
from repro.catalog.statistics import ColumnStats, EquiDepthHistogram, TableStats
from repro.errors import WorkloadError
from repro.storage.micropartition import COMPRESSION_RATIO, DEFAULT_PARTITION_ROWS
from repro.workloads.tpch_schema import (
    BASE_ROW_COUNTS,
    DATE_MAX,
    DATE_MIN,
    TPCH_DICTIONARIES,
    TPCH_SCHEMAS,
)


def _uniform_histogram(lo: float, hi: float, rows: int, buckets: int = 64) -> EquiDepthHistogram:
    if rows <= 0:
        return EquiDepthHistogram(bounds=(lo, hi), counts=(0,))
    buckets = max(1, min(buckets, rows))
    step = (hi - lo) / buckets
    bounds = tuple(lo + i * step for i in range(buckets + 1))
    base = rows // buckets
    counts = [base] * buckets
    counts[-1] += rows - base * buckets
    return EquiDepthHistogram(bounds=bounds, counts=tuple(counts))


def _column_domains(rows: dict[str, int]) -> dict[str, dict[str, tuple[float, float, float]]]:
    """Per table.column: (min, max, ndv) matching the data generator."""
    n_nation = rows["nation"]
    n_region = rows["region"]
    n_supplier = rows["supplier"]
    n_customer = rows["customer"]
    n_part = rows["part"]
    n_orders = rows["orders"]
    n_lineitem = rows["lineitem"]
    dictionary_sizes = {
        (table, column): len(values)
        for table, columns in TPCH_DICTIONARIES.items()
        for column, values in columns.items()
    }

    def dict_ndv(table: str, column: str) -> float:
        return float(dictionary_sizes[(table, column)])

    return {
        "region": {
            "r_regionkey": (0, n_region - 1, n_region),
            "r_name": (0, n_region - 1, n_region),
        },
        "nation": {
            "n_nationkey": (0, n_nation - 1, n_nation),
            "n_name": (0, n_nation - 1, n_nation),
            "n_regionkey": (0, n_region - 1, n_region),
        },
        "supplier": {
            "s_suppkey": (0, n_supplier - 1, n_supplier),
            "s_nationkey": (0, n_nation - 1, min(n_nation, n_supplier)),
            "s_acctbal": (-999.99, 9999.99, min(n_supplier, 1_000_000)),
        },
        "customer": {
            "c_custkey": (0, n_customer - 1, n_customer),
            "c_nationkey": (0, n_nation - 1, min(n_nation, n_customer)),
            "c_acctbal": (-999.99, 9999.99, min(n_customer, 1_000_000)),
            "c_mktsegment": (0, 4, dict_ndv("customer", "c_mktsegment")),
        },
        "part": {
            "p_partkey": (0, n_part - 1, n_part),
            "p_brand": (0, 24, dict_ndv("part", "p_brand")),
            "p_type": (0, 149, dict_ndv("part", "p_type")),
            "p_size": (1, 50, 50),
            "p_retailprice": (900.0, 2100.0, min(n_part, 1_000_000)),
        },
        "partsupp": {
            "ps_partkey": (0, n_part - 1, min(n_part, rows["partsupp"])),
            "ps_suppkey": (0, n_supplier - 1, min(n_supplier, rows["partsupp"])),
            "ps_availqty": (1, 9999, 9999),
            "ps_supplycost": (1.0, 1000.0, min(rows["partsupp"], 1_000_000)),
        },
        "orders": {
            "o_orderkey": (0, n_orders - 1, n_orders),
            "o_custkey": (0, n_customer - 1, min(n_customer, n_orders)),
            "o_orderstatus": (0, 2, dict_ndv("orders", "o_orderstatus")),
            "o_totalprice": (850.0, 450_000.0, min(n_orders, 1_000_000)),
            "o_orderdate": (DATE_MIN, DATE_MAX - 150, DATE_MAX - 150 - DATE_MIN),
            "o_orderpriority": (0, 4, dict_ndv("orders", "o_orderpriority")),
        },
        "lineitem": {
            "l_orderkey": (0, n_orders - 1, min(n_orders, n_lineitem)),
            "l_partkey": (0, n_part - 1, min(n_part, n_lineitem)),
            "l_suppkey": (0, n_supplier - 1, min(n_supplier, n_lineitem)),
            "l_quantity": (1, 50, 50),
            "l_extendedprice": (900.0, 105_000.0, min(n_lineitem, 1_000_000)),
            "l_discount": (0.0, 0.10, 11),
            "l_tax": (0.0, 0.08, 9),
            "l_returnflag": (0, 2, dict_ndv("lineitem", "l_returnflag")),
            "l_linestatus": (0, 1, dict_ndv("lineitem", "l_linestatus")),
            "l_shipdate": (DATE_MIN + 1, DATE_MAX - 30, DATE_MAX - 30 - DATE_MIN),
            "l_commitdate": (DATE_MIN - 30, DATE_MAX, DATE_MAX - DATE_MIN),
            "l_receiptdate": (DATE_MIN + 2, DATE_MAX, DATE_MAX - DATE_MIN),
            "l_shipmode": (0, 6, dict_ndv("lineitem", "l_shipmode")),
        },
    }


def synthetic_tpch_catalog(
    scale_factor: float,
    *,
    cluster_keys: dict[str, str] | None = None,
    partition_rows: int = DEFAULT_PARTITION_ROWS,
    catalog: Catalog | None = None,
) -> Catalog:
    """Build a statistics-only TPC-H catalog at ``scale_factor``.

    ``cluster_keys`` marks tables as physically clustered on a column;
    their clustering depth is derived from the partition count (a
    well-maintained clustered table touches only a handful of partitions
    per key range).
    """
    if scale_factor <= 0:
        raise WorkloadError(f"scale factor must be positive, got {scale_factor}")
    cluster_keys = cluster_keys or {}
    catalog = catalog or Catalog()

    rows: dict[str, int] = {}
    for table, base in BASE_ROW_COUNTS.items():
        if table in ("region", "nation"):
            rows[table] = base
        else:
            rows[table] = max(1, int(round(base * scale_factor)))

    domains = _column_domains(rows)
    for table_name, schema in TPCH_SCHEMAS.items():
        row_count = rows[table_name]
        column_stats: dict[str, ColumnStats] = {}
        for column in schema.columns:
            lo, hi, ndv = domains[table_name][column.name]
            ndv_int = max(1, min(int(round(ndv)), row_count))
            column_stats[column.name] = ColumnStats(
                column=column,
                row_count=row_count,
                ndv=ndv_int,
                min_value=float(lo),
                max_value=float(hi),
                histogram=_uniform_histogram(float(lo), float(hi), row_count),
            )
        stats = TableStats(
            table=table_name, row_count=row_count, column_stats=column_stats
        )
        num_partitions = max(1, math.ceil(row_count / partition_rows))
        key = cluster_keys.get(table_name)
        depth = 1.0
        schema_out = schema
        if key is not None:
            schema_out = schema.with_clustering_key(key)
            depth = min(1.0, max(2.0 / num_partitions, 0.001))
        entry = TableEntry(
            schema=schema_out,
            stats=stats,
            storage_bytes=int(row_count * schema.row_width_bytes / COMPRESSION_RATIO),
            num_partitions=num_partitions,
            dictionaries=dict(TPCH_DICTIONARIES.get(table_name, {})),
            clustering_depth=depth,
        )
        catalog.register_table(entry)
    return catalog
