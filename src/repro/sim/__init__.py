"""Discrete-event distributed execution simulator.

Plays the role of the paper's real cluster (their testbed): executes a
pipeline DAG over simulated elastic nodes with *hidden* ground-truth
behavior the analytic estimator does not know — partition skew,
stochastic rate noise, miscalibrated exchange constants, warm-pool
latencies, lease-minimum billing — plus true cardinalities instead of
optimizer estimates.  The DOP monitor (§3.3) runs inside it via scaling
policies and corrects deviations at run time.
"""

from repro.sim.skew import zipf_shares, skew_multiplier
from repro.sim.distsim import (
    DistributedSimulator,
    PipelineRun,
    SimConfig,
    SimResult,
    measure_exchange,
)

__all__ = [
    "zipf_shares",
    "skew_multiplier",
    "DistributedSimulator",
    "SimConfig",
    "SimResult",
    "PipelineRun",
    "measure_exchange",
]
