"""Partition skew model.

Hash-partitioned operators suffer stragglers when key frequencies are
skewed: the slowest node receives the largest partition share and gates
the operator.  We model bucket shares with a Zipf-like distribution over
the DOP and derive the straggler multiplier — 1.0 at DOP 1, growing with
both DOP and the skew exponent.  The analytic estimator assumes uniform
shares; this gap is one of the run-time deviations the DOP monitor
absorbs (§3.3).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError


def zipf_shares(dop: int, s: float, rng: np.random.Generator | None = None) -> np.ndarray:
    """Partition shares across ``dop`` buckets under Zipf exponent ``s``.

    ``s = 0`` yields uniform shares; larger ``s`` concentrates mass.  When
    an ``rng`` is given, ranks are randomly permuted (which bucket is the
    heavy one varies) and shares get a small multiplicative jitter.
    """
    if dop < 1:
        raise ReproError(f"dop must be >= 1, got {dop}")
    ranks = np.arange(1, dop + 1, dtype=np.float64)
    weights = ranks ** (-s)
    if rng is not None:
        weights = weights * rng.uniform(0.9, 1.1, size=dop)
        rng.shuffle(weights)
    return weights / weights.sum()


def skew_multiplier(dop: int, s: float, rng: np.random.Generator | None = None) -> float:
    """Straggler slowdown: max share divided by the uniform share.

    A perfectly uniform partitioning gives 1.0; with skew the slowest
    node holds ``max_share`` of the work, so the operator takes
    ``max_share * dop`` times the uniform per-node time.
    """
    shares = zipf_shares(dop, s, rng)
    return float(shares.max() * dop)
