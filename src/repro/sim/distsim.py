"""The discrete-event distributed execution simulator.

Executes one query's pipeline DAG over simulated elastic compute and
plays the role of the paper's production cluster.  Divergences from the
analytic estimator — all *hidden* from planning — are:

- true cardinalities (``truth`` overrides) instead of optimizer estimates;
- partition skew on shuffled pipelines (Zipf stragglers);
- multiplicative rate noise per pipeline;
- miscalibrated exchange constants (protocol inefficiency the regression
  calibration of §3.1 can recover);
- warm-pool provisioning latencies and per-lease minimum billing;
- morsel-driven mid-pipeline resizing: a scaling policy (the DOP monitor)
  may change a pipeline's DOP at progress checkpoints, or replan pending
  pipelines (§3.3).

Billing follows the paper's semantics: a breaker pipeline's nodes stay
leased (idle, billed) until the consumer starts and inherits them; in
``materialize_exchanges`` mode (the BigQuery-style "clean cuts" baseline)
nodes release immediately but every exchange pays a materialization
round-trip through shared storage.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field

import numpy as np

from repro.compute.billing import BillingMeter, CostBreakdown
from repro.compute.node import NodeSpec
from repro.compute.pricing import PriceModel
from repro.compute.warmpool import WarmPool
from repro.cost.estimate import CostEstimate
from repro.cost.operator_models import OperatorModels
from repro.cost.volumes import pipeline_volumes
from repro.errors import ExecutionError
from repro.plan.physical import ExchangeKind, PhysExchange, PhysScan
from repro.plan.pipelines import Pipeline, PipelineDag
from repro.util.rng import derive_rng


# ---------------------------------------------------------------------- #
# Configuration and results
# ---------------------------------------------------------------------- #
@dataclass(frozen=True)
class SimConfig:
    """Simulator behavior knobs, including hidden ground-truth factors."""

    seed: int = 0
    checkpoint_fraction: float = 0.2
    min_checkpoint_seconds: float = 0.2
    noise_sigma: float = 0.06
    skew_zipf_s: float = 0.5
    cpu_rate_multiplier: float = 0.94
    exchange_transfer_multiplier: float = 1.18
    exchange_setup_multiplier: float = 1.6
    materialize_exchanges: bool = False
    include_provisioning: bool = True
    resize_latency_s: float = 1.0


@dataclass
class PipelineRun:
    """Observed execution record of one pipeline."""

    pipeline_id: int
    dop_history: list[tuple[float, int]] = field(default_factory=list)
    start: float = 0.0
    run_start: float = 0.0
    finish: float = 0.0
    true_source_rows: float = 0.0
    resizes: int = 0

    @property
    def final_dop(self) -> int:
        return self.dop_history[-1][1] if self.dop_history else 0

    @property
    def duration(self) -> float:
        return self.finish - self.start


@dataclass
class SimResult:
    """Outcome of one simulated query execution."""

    latency: float
    cost: CostBreakdown
    scan_request_dollars: float
    resize_count: int
    cold_starts: int
    runs: dict[int, PipelineRun] = field(default_factory=dict)

    @property
    def total_dollars(self) -> float:
        return self.cost.total_dollars + self.scan_request_dollars

    @property
    def machine_seconds(self) -> float:
        return self.cost.machine_seconds


# ---------------------------------------------------------------------- #
# Scaling-policy protocol (implemented in repro.monitor.policies)
# ---------------------------------------------------------------------- #
@dataclass
class CheckpointObservation:
    """What the DOP monitor sees at a progress checkpoint."""

    time: float
    pipeline_id: int
    progress: float
    dop: int
    elapsed: float
    projected_duration: float
    planned_duration: float
    planned_source_rows: float
    true_source_rows: float

    @property
    def cardinality_ratio(self) -> float:
        """Observed/planned source cardinality (the §3.3 deviation signal)."""
        if self.planned_source_rows <= 0:
            return 1.0
        return self.true_source_rows / self.planned_source_rows


@dataclass
class ResizeDecision:
    """Policy response: resize the current pipeline and/or replan others."""

    new_dop: int | None = None
    replan: dict[int, int] | None = None


class ScalingPolicy:
    """Base policy: never scales (static plan execution)."""

    name = "static"

    def on_pipeline_start(self, pipeline_id: int, planned_dop: int) -> int:
        """Return the DOP the pipeline should start with."""
        return planned_dop

    def on_checkpoint(self, obs: CheckpointObservation) -> ResizeDecision | None:
        return None

    def on_pipeline_finish(
        self, pipeline_id: int, time: float, true_rows: float
    ) -> dict[int, int] | None:
        """Optionally replan pending pipelines' DOPs after a finish."""
        return None


# ---------------------------------------------------------------------- #
# Internal pipeline state
# ---------------------------------------------------------------------- #
_PENDING, _RUNNING, _DONE = range(3)


@dataclass
class _State:
    pipeline: Pipeline
    dop: int
    state: int = _PENDING
    epoch: int = 0
    progress: float = 0.0
    last_time: float = 0.0
    duration_full: float = 0.0
    leases: list[int] = field(default_factory=list)
    run: PipelineRun = field(default_factory=lambda: PipelineRun(-1))


class DistributedSimulator:
    """Runs one pipeline DAG to completion under a scaling policy."""

    def __init__(
        self,
        dag: PipelineDag,
        dops: dict[int, int],
        models: OperatorModels,
        *,
        truth: dict[int, float] | None = None,
        planned: CostEstimate | None = None,
        policy: ScalingPolicy | None = None,
        config: SimConfig | None = None,
        price_model: PriceModel | None = None,
        pool: WarmPool | None = None,
    ) -> None:
        self.dag = dag
        self.models = models
        self.truth = truth or {}
        self.planned = planned
        self.policy = policy or ScalingPolicy()
        self.config = config or SimConfig()
        spec: NodeSpec = models.hw.node
        self.pool = pool or WarmPool(spec)
        self.meter = BillingMeter(price_model or PriceModel(minimum_billed_seconds=1.0))
        self._states: dict[int, _State] = {}
        for pipeline in dag:
            dop = dops.get(pipeline.pipeline_id, 1)
            self._states[pipeline.pipeline_id] = _State(pipeline=pipeline, dop=dop)
        self._events: list[tuple[float, int, str, int, int]] = []
        self._seq = itertools.count()
        self._resize_count = 0

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #
    def run(self) -> SimResult:
        now = 0.0
        for pipeline in self.dag:
            if not pipeline.blocking_deps:
                self._push(0.0, "start", pipeline.pipeline_id, 0)
        last_time = 0.0
        while self._events:
            time, _, kind, pid, epoch = heapq.heappop(self._events)
            state = self._states[pid]
            if epoch != state.epoch and kind != "start":
                continue  # stale event from before a resize
            last_time = max(last_time, time)
            if kind == "start":
                self._handle_start(state, time)
            elif kind == "checkpoint":
                self._handle_checkpoint(state, time)
            elif kind == "finish":
                self._handle_finish(state, time)
            else:  # pragma: no cover - defensive
                raise ExecutionError(f"unknown event kind {kind!r}")

        unfinished = [s.pipeline.pipeline_id for s in self._states.values() if s.state != _DONE]
        if unfinished:
            raise ExecutionError(f"pipelines never completed: {unfinished}")
        self.meter.close_all(last_time)

        runs = {pid: s.run for pid, s in self._states.items()}
        return SimResult(
            latency=last_time,
            cost=self.meter.breakdown(),
            scan_request_dollars=self._scan_request_dollars(),
            resize_count=self._resize_count,
            cold_starts=self.pool.cold_starts,
            runs=runs,
        )

    # ------------------------------------------------------------------ #
    # Event handlers
    # ------------------------------------------------------------------ #
    def _handle_start(self, state: _State, now: float) -> None:
        pid = state.pipeline.pipeline_id
        dop = max(1, self.policy.on_pipeline_start(pid, state.dop))
        state.dop = dop
        latency = self._adjust_leases(state, dop, now)
        run_start = now + latency
        state.state = _RUNNING
        state.progress = 0.0
        state.last_time = run_start
        state.duration_full = self._true_duration(state, dop)
        state.run = PipelineRun(pipeline_id=pid)
        state.run.start = now
        state.run.run_start = run_start
        state.run.dop_history.append((now, dop))
        state.run.true_source_rows = self._true_source_rows(state.pipeline, dop)
        self._schedule_progress(state, run_start)

    def _handle_checkpoint(self, state: _State, now: float) -> None:
        state.progress = min(
            1.0, state.progress + (now - state.last_time) / state.duration_full
        )
        state.last_time = now
        obs = self._observation(state, now)
        decision = self.policy.on_checkpoint(obs)
        if decision is not None:
            if decision.replan:
                for pid, dop in decision.replan.items():
                    target = self._states.get(pid)
                    if target is not None and target.state == _PENDING:
                        target.dop = max(1, dop)
            if decision.new_dop is not None and decision.new_dop != state.dop:
                self._apply_resize(state, decision.new_dop, now)
                return
        self._schedule_progress(state, now)

    def _apply_resize(self, state: _State, new_dop: int, now: float) -> None:
        new_dop = max(1, new_dop)
        self._resize_count += 1
        state.run.resizes += 1
        latency = self._adjust_leases(state, new_dop, now)
        latency += self.config.resize_latency_s
        state.dop = new_dop
        state.epoch += 1
        state.duration_full = self._true_duration(state, new_dop)
        state.last_time = now + latency
        state.run.dop_history.append((now, new_dop))
        self._schedule_progress(state, now + latency)

    def _handle_finish(self, state: _State, now: float) -> None:
        state.progress = 1.0
        state.state = _DONE
        state.run.finish = now
        pipeline = state.pipeline
        pid = pipeline.pipeline_id

        release_now = (
            pipeline.consumer_id is None or self.config.materialize_exchanges
        )
        if release_now:
            self._close_leases(state, now)

        replan = self.policy.on_pipeline_finish(
            pid, now, state.run.true_source_rows
        )
        if replan:
            for target_pid, dop in replan.items():
                target = self._states.get(target_pid)
                if target is not None and target.state == _PENDING:
                    target.dop = max(1, dop)

        for other in self.dag:
            if pid in other.blocking_deps:
                other_state = self._states[other.pipeline_id]
                if other_state.state == _PENDING and all(
                    self._states[dep].state == _DONE for dep in other.blocking_deps
                ):
                    self._push(now, "start", other.pipeline_id, other_state.epoch)

    # ------------------------------------------------------------------ #
    # Scheduling helpers
    # ------------------------------------------------------------------ #
    def _push(self, time: float, kind: str, pid: int, epoch: int) -> None:
        heapq.heappush(self._events, (time, next(self._seq), kind, pid, epoch))

    def _schedule_progress(self, state: _State, now: float) -> None:
        remaining = max(0.0, (1.0 - state.progress) * state.duration_full)
        finish_at = now + remaining
        checkpoint_gap = self.config.checkpoint_fraction * state.duration_full
        pid = state.pipeline.pipeline_id
        if (
            state.duration_full >= self.config.min_checkpoint_seconds
            and checkpoint_gap > 0
            and now + checkpoint_gap < finish_at - 1e-9
        ):
            self._push(now + checkpoint_gap, "checkpoint", pid, state.epoch)
        else:
            self._push(finish_at, "finish", pid, state.epoch)

    # ------------------------------------------------------------------ #
    # Lease management
    # ------------------------------------------------------------------ #
    def _adjust_leases(self, state: _State, dop: int, now: float) -> float:
        """Bring ``state``'s lease count to ``dop``; returns latency."""
        if state.state == _PENDING and not self.config.materialize_exchanges:
            # Inherit pinned nodes from finished producer pipelines.
            for producer in self.dag:
                if producer.consumer_id == state.pipeline.pipeline_id:
                    producer_state = self._states[producer.pipeline_id]
                    state.leases.extend(producer_state.leases)
                    producer_state.leases = []
        latency = 0.0
        delta = dop - len(state.leases)
        if delta > 0:
            latency = self.pool.acquire(delta)
            if not self.config.include_provisioning:
                latency = 0.0
            for _ in range(delta):
                lease = self.meter.open_lease(
                    self.models.hw.node, now, label=f"P{state.pipeline.pipeline_id}"
                )
                state.leases.append(lease)
        elif delta < 0:
            for _ in range(-delta):
                self.meter.close_lease(state.leases.pop(), now)
            self.pool.release(-delta)
        return latency

    def _close_leases(self, state: _State, now: float) -> None:
        if state.leases:
            self.pool.release(len(state.leases))
        for lease in state.leases:
            self.meter.close_lease(lease, now)
        state.leases = []

    # ------------------------------------------------------------------ #
    # Ground-truth timing
    # ------------------------------------------------------------------ #
    def _true_duration(self, state: _State, dop: int) -> float:
        pipeline = state.pipeline
        rng = derive_rng(
            self.config.seed, "pipeline", str(pipeline.pipeline_id), str(state.epoch)
        )
        return true_pipeline_duration(
            pipeline, dop, self.models, self.truth, self.config, rng
        )

    def _true_source_rows(self, pipeline: Pipeline, dop: int) -> float:
        volumes = pipeline_volumes(pipeline, dop, self.truth)
        return volumes[0].rows_out if volumes else 0.0

    def _observation(self, state: _State, now: float) -> CheckpointObservation:
        pid = state.pipeline.pipeline_id
        planned_duration = 0.0
        planned_rows = float(state.pipeline.ops[0].node.est_rows)
        if self.planned is not None and pid in self.planned.pipelines:
            planned_duration = self.planned.pipelines[pid].duration
            planned_rows = self.planned.pipelines[pid].source_rows
        return CheckpointObservation(
            time=now,
            pipeline_id=pid,
            progress=state.progress,
            dop=state.dop,
            elapsed=now - state.run.run_start,
            projected_duration=state.duration_full,
            planned_duration=planned_duration,
            planned_source_rows=planned_rows,
            true_source_rows=state.run.true_source_rows,
        )

    def _scan_request_dollars(self) -> float:
        store = self.models.hw.store
        chunk = 8 * 1024 * 1024
        dollars = 0.0
        seen: set[int] = set()
        for pipeline in self.dag:
            for op in pipeline.ops:
                node = op.node
                if isinstance(node, PhysScan) and node.node_id not in seen:
                    seen.add(node.node_id)
                    dollars += max(1.0, node.input_bytes / chunk) * store.price_per_get
        return dollars


# ---------------------------------------------------------------------- #
# Ground-truth duration model
# ---------------------------------------------------------------------- #
def true_pipeline_duration(
    pipeline: Pipeline,
    dop: int,
    models: OperatorModels,
    truth: dict[int, float],
    config: SimConfig,
    rng: np.random.Generator,
) -> float:
    """Pipeline duration with the simulator's hidden perturbations."""
    from repro.sim.skew import skew_multiplier

    volumes = pipeline_volumes(pipeline, dop, truth if truth else None)
    has_shuffle = any(
        isinstance(v.op.node, PhysExchange) and v.op.node.kind is ExchangeKind.SHUFFLE
        for v in volumes
    )
    stream = 0.0
    fixed = models.hw.pipeline_startup_s
    for index, volume in enumerate(volumes):
        op_time = models.op_time(volume, dop, pipeline=pipeline, index=index)
        stream_s, fixed_s = op_time.stream_s, op_time.fixed_s
        node = volume.op.node
        if isinstance(node, PhysExchange):
            stream_s *= config.exchange_transfer_multiplier
            fixed_s *= config.exchange_setup_multiplier
            if config.materialize_exchanges:
                store = models.hw.store
                round_trip = 2.0 * volume.bytes_in / (dop * store.per_node_bandwidth)
                fixed_s += round_trip + 2.0 * store.request_latency_s
        else:
            stream_s /= config.cpu_rate_multiplier
        stream = max(stream, stream_s)
        fixed += fixed_s
    if has_shuffle and dop > 1:
        stream *= skew_multiplier(dop, config.skew_zipf_s, rng)
    noise = float(rng.lognormal(mean=0.0, sigma=config.noise_sigma))
    return (stream + fixed) * noise


def measure_exchange(
    kind: ExchangeKind,
    payload_bytes: float,
    dop: int,
    *,
    models: OperatorModels | None = None,
    config: SimConfig | None = None,
    seed: int = 1,
) -> float:
    """Synthetic exchange micro-benchmark (the calibration oracle).

    Returns the simulator's ground-truth time for moving
    ``payload_bytes`` through one exchange at ``dop`` — what a real system
    would measure on its cluster to pre-train the regression models.
    """
    from repro.cost.regression import analytic_transfer_seconds
    from repro.sim.skew import skew_multiplier

    models = models or OperatorModels()
    config = config or SimConfig()
    hw = models.hw
    rng = derive_rng(seed, "exchange", kind.value, str(int(payload_bytes)), str(dop))
    transfer = analytic_transfer_seconds(
        kind, payload_bytes, dop, hw.network_bytes_per_node, hw.broadcast_tree_factor
    )
    transfer *= config.exchange_transfer_multiplier
    if kind is ExchangeKind.SHUFFLE and dop > 1:
        transfer *= skew_multiplier(dop, config.skew_zipf_s, rng)
    setup = (
        hw.exchange_setup_s + hw.exchange_pair_setup_s * max(0, dop - 1)
    ) * config.exchange_setup_multiplier
    noise = float(rng.lognormal(mean=0.0, sigma=config.noise_sigma))
    return (transfer + setup) * noise
