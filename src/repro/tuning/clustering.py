"""Reclustering tuning actions (paper §4's petabyte-table example).

"Suppose that a user is presented with a tuning suggestion that proposes
to recluster (or repartition) a petabyte-sized table T according to a
different attribute A. Although such a reclustering operation could speed
up queries that use A in the predicates or join columns, the cost of
repopulating a petabyte-sized table is enormous."

This module prices both sides: the one-time repopulation cost (scan +
sort + rewrite of the whole table) and the recurring scan savings from
improved partition pruning.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.catalog.catalog import Catalog
from repro.cost.hardware import HardwareCalibration
from repro.errors import TuningError


@dataclass(frozen=True)
class ReclusterCandidate:
    """Proposal: recluster ``table`` on ``key``."""

    table: str
    key: str

    @property
    def name(self) -> str:
        return f"recluster_{self.table}_on_{self.key}"


def recluster_one_time_cost(
    candidate: ReclusterCandidate,
    catalog: Catalog,
    hardware: HardwareCalibration | None = None,
    *,
    dop: int = 16,
) -> tuple[float, float]:
    """(machine_seconds, dollars) to repopulate the table sorted on key.

    The rewrite reads every partition, external-sorts by the new key, and
    writes every partition back — scan + sort + write at the calibrated
    rates.  Dollar cost is machine time plus object-store requests; it is
    largely DOP-invariant (more nodes finish faster at the same machine
    time), which is why the report prices it in machine-time dollars.
    """
    hw = hardware or HardwareCalibration()
    entry = catalog.table(candidate.table)
    if not entry.schema.has_column(candidate.key):
        raise TuningError(
            f"table {candidate.table!r} has no column {candidate.key!r}"
        )
    if dop < 1:
        raise TuningError(f"dop must be positive, got {dop}")
    stored_bytes = float(entry.storage_bytes)
    rows = float(entry.row_count)

    scan_s = stored_bytes / hw.scan_bytes_per_node
    per_node_rows = max(2.0, rows / dop)
    log_ref = math.log2(max(2.0, hw.sort_reference_rows))
    sort_rate = hw.node.cores * hw.sort_rows_per_core * log_ref / math.log2(per_node_rows)
    sort_s = rows / (dop * sort_rate) * dop  # machine time, not wall time
    write_s = stored_bytes / hw.store.per_node_bandwidth
    machine_seconds = scan_s + sort_s + write_s

    chunk = 8 * 1024 * 1024
    request_dollars = (
        (stored_bytes / chunk) * hw.store.price_per_get
        + (stored_bytes / chunk) * hw.store.price_per_put
    )
    dollars = machine_seconds * hw.node.price_per_second + request_dollars
    return machine_seconds, dollars


def improved_depth(catalog: Catalog, table: str) -> float:
    """Clustering depth after a fresh recluster (near-perfect layout)."""
    entry = catalog.table(table)
    return min(1.0, max(2.0 / max(1, entry.num_partitions), 0.001))


def apply_hypothetical_recluster(
    overlay: Catalog, candidate: ReclusterCandidate
) -> None:
    """Mark the table clustered on the new key in a what-if overlay."""
    overlay.set_clustering(
        candidate.table, candidate.key, improved_depth(overlay, candidate.table)
    )
