"""Background compute: applies accepted tuning actions (paper Fig. 3).

"Once the What-if Service accepts a tuning proposal ... the job is sent
to the background compute for execution."  Separate compute keeps tuning
work from contending with foreground queries (the §4 argument for why
auto-tuning is more solvable in the cloud); its spend is metered in a
ledger so experiments can report foreground vs background dollars.

Every ``apply_*`` method returns an :class:`UndoAction` — a typed token
that captures, *before* mutating anything, exactly how to physically
reverse the action (and what that reversal will cost).  The
:class:`~repro.tuning.service.TuningService` holds these tokens on
applied :class:`~repro.tuning.service.Recommendation`\\ s so tuning
actions stay revisitable as the workload drifts instead of being
fire-and-forget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.catalog.catalog import Catalog
from repro.engine.database import Database
from repro.engine.local_executor import LocalExecutor
from repro.errors import TuningError
from repro.optimizer.dag_planner import DagPlanner
from repro.sql.binder import Binder
from repro.tuning.clustering import ReclusterCandidate, improved_depth
from repro.tuning.mv import MVCandidate, mv_build_sql, mv_schema
from repro.tuning.whatif import TuningReport


@dataclass
class LedgerEntry:
    """One executed background job and what it cost."""

    action_name: str
    kind: str
    dollars: float
    applied_physically: bool


@dataclass(frozen=True)
class UndoAction:
    """How to physically reverse one applied tuning action.

    Captured at apply time (prior catalog entry, prior stored table) so a
    later rollback restores bit-identical state regardless of what else
    happened in between.  ``dollars`` is what executing the rollback will
    cost: re-sorting a table back is another full rewrite, dropping a
    materialized view is a metadata-only operation.
    """

    action_name: str
    kind: str
    dollars: float
    physical: bool
    run: Callable[[], None]


@dataclass
class BackgroundComputeService:
    """Executes accepted tuning actions against the database/catalog."""

    database: Database | None = None
    catalog: Catalog | None = None
    ledger: list[LedgerEntry] = field(default_factory=list)
    #: The ``tuning_apply`` fault-injection point: runs before any job
    #: (apply or rollback) mutates state, so an injected failure models
    #: background compute dying *before* the action landed — nothing is
    #: half-applied and no ledger entry is written.  Wired by
    #: :class:`~repro.tuning.service.TuningService` to the warehouse's
    #: active :class:`~repro.testing.faults.FaultPlan`; ``None`` outside
    #: chaos testing.
    fault_hook: Callable[[], None] | None = None

    def __post_init__(self) -> None:
        if self.database is None and self.catalog is None:
            raise TuningError("background compute needs a database or catalog")
        if self.catalog is None and self.database is not None:
            self.catalog = self.database.catalog

    @property
    def total_spend(self) -> float:
        return sum(e.dollars for e in self.ledger)

    # ------------------------------------------------------------------ #
    def _fire_fault(self) -> None:
        if self.fault_hook is not None:
            self.fault_hook()

    def apply_mv(self, candidate: MVCandidate, report: TuningReport) -> UndoAction:
        """Materialize an accepted MV (physically when data is present)."""
        self._fire_fault()
        assert self.catalog is not None
        catalog = self.catalog
        database = self.database
        physical = database is not None and all(
            t in database.table_names for t in candidate.base_tables
        )
        if physical:
            self._materialize_mv(candidate)
        else:
            from repro.tuning.mv import register_hypothetical_mv

            register_hypothetical_mv(catalog, candidate, catalog)
        self.ledger.append(
            LedgerEntry(
                action_name=candidate.name,
                kind="materialized-view",
                dollars=report.one_time_dollars,
                applied_physically=physical,
            )
        )

        def undo() -> None:
            if physical:
                assert database is not None
                database.drop_table(candidate.name)
            else:
                catalog.drop_table(candidate.name)
            catalog.drop_view(candidate.name)

        return UndoAction(
            action_name=candidate.name,
            kind="materialized-view",
            dollars=0.0,  # dropping a view is metadata-only
            physical=physical,
            run=undo,
        )

    def _materialize_mv(self, candidate: MVCandidate) -> None:
        assert self.database is not None
        binder = Binder(self.database.catalog)
        build_query = binder.bind_sql(mv_build_sql(candidate))
        plan = DagPlanner(self.database.catalog).plan(build_query)
        result = LocalExecutor(self.database).execute(plan)
        schema = mv_schema(candidate, self.database.catalog)
        columns = {
            name: result.batch.column(name) for name in schema.column_names
        }
        dictionaries = {}
        for name in candidate.group_by:
            for table in candidate.base_tables:
                source = self.database.catalog.table(table).dictionaries.get(name)
                if source is not None:
                    dictionaries[name] = source
        self.database.create_table(schema, columns, dictionaries=dictionaries)
        self.database.catalog.register_view(candidate.to_view_def(mv_build_sql(candidate)))

    # ------------------------------------------------------------------ #
    def apply_recluster(
        self, candidate: ReclusterCandidate, report: TuningReport
    ) -> UndoAction:
        """Physically re-sort the table (or update the overlay stats)."""
        self._fire_fault()
        assert self.catalog is not None
        catalog = self.catalog
        database = self.database
        # Snapshot prior state *before* mutating so the undo restores the
        # exact catalog entry (schema, stats, clustering depth) verbatim.
        prior_entry = catalog.table(candidate.table)
        physical = database is not None and candidate.table in database.table_names
        prior_stored = database.stored_table(candidate.table) if physical else None
        if physical:
            assert database is not None
            database.replace_table_storage(
                candidate.table, database.stored_table(candidate.table).recluster(candidate.key)
            )
        else:
            catalog.set_clustering(
                candidate.table,
                candidate.key,
                improved_depth(catalog, candidate.table),
            )
        self.ledger.append(
            LedgerEntry(
                action_name=candidate.name,
                kind="recluster",
                dollars=report.one_time_dollars,
                applied_physically=physical,
            )
        )

        def undo() -> None:
            if physical:
                assert database is not None and prior_stored is not None
                database.replace_table_storage(candidate.table, prior_stored)
            catalog.register_table(prior_entry, replace_existing=True)

        return UndoAction(
            action_name=candidate.name,
            kind="recluster",
            dollars=report.one_time_dollars,  # sorting back is another rewrite
            physical=physical,
            run=undo,
        )

    # ------------------------------------------------------------------ #
    def rollback(self, undo: UndoAction) -> None:
        """Execute an undo token and meter the reversal in the ledger."""
        self._fire_fault()
        undo.run()
        self.ledger.append(
            LedgerEntry(
                action_name=undo.action_name,
                kind=f"rollback-{undo.kind}",
                dollars=undo.dollars,
                applied_physically=undo.physical,
            )
        )
