"""Background compute: applies accepted tuning actions (paper Fig. 3).

"Once the What-if Service accepts a tuning proposal ... the job is sent
to the background compute for execution."  Separate compute keeps tuning
work from contending with foreground queries (the §4 argument for why
auto-tuning is more solvable in the cloud); its spend is metered in a
ledger so experiments can report foreground vs background dollars.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.engine.database import Database
from repro.engine.local_executor import LocalExecutor
from repro.errors import TuningError
from repro.optimizer.dag_planner import DagPlanner
from repro.sql.binder import Binder
from repro.tuning.clustering import ReclusterCandidate, improved_depth
from repro.tuning.mv import MVCandidate, mv_build_sql, mv_schema
from repro.tuning.whatif import TuningReport


@dataclass
class LedgerEntry:
    """One executed background job and what it cost."""

    action_name: str
    kind: str
    dollars: float
    applied_physically: bool


@dataclass
class BackgroundComputeService:
    """Executes accepted tuning actions against the database/catalog."""

    database: Database | None = None
    catalog: Catalog | None = None
    ledger: list[LedgerEntry] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.database is None and self.catalog is None:
            raise TuningError("background compute needs a database or catalog")
        if self.catalog is None and self.database is not None:
            self.catalog = self.database.catalog

    @property
    def total_spend(self) -> float:
        return sum(e.dollars for e in self.ledger)

    # ------------------------------------------------------------------ #
    def apply_mv(self, candidate: MVCandidate, report: TuningReport) -> None:
        """Materialize an accepted MV (physically when data is present)."""
        assert self.catalog is not None
        physical = False
        if self.database is not None and all(
            t in self.database.table_names for t in candidate.base_tables
        ):
            self._materialize_mv(candidate)
            physical = True
        else:
            from repro.tuning.mv import register_hypothetical_mv

            register_hypothetical_mv(self.catalog, candidate, self.catalog)
        self.ledger.append(
            LedgerEntry(
                action_name=candidate.name,
                kind="materialized-view",
                dollars=report.one_time_dollars,
                applied_physically=physical,
            )
        )

    def _materialize_mv(self, candidate: MVCandidate) -> None:
        assert self.database is not None
        binder = Binder(self.database.catalog)
        build_query = binder.bind_sql(mv_build_sql(candidate))
        plan = DagPlanner(self.database.catalog).plan(build_query)
        result = LocalExecutor(self.database).execute(plan)
        schema = mv_schema(candidate, self.database.catalog)
        columns = {
            name: result.batch.column(name) for name in schema.column_names
        }
        dictionaries = {}
        for name in candidate.group_by:
            for table in candidate.base_tables:
                source = self.database.catalog.table(table).dictionaries.get(name)
                if source is not None:
                    dictionaries[name] = source
        self.database.create_table(schema, columns, dictionaries=dictionaries)
        self.database.catalog.register_view(candidate.to_view_def(mv_build_sql(candidate)))

    # ------------------------------------------------------------------ #
    def apply_recluster(
        self, candidate: ReclusterCandidate, report: TuningReport
    ) -> None:
        """Physically re-sort the table (or update the overlay stats)."""
        assert self.catalog is not None
        physical = False
        if self.database is not None and candidate.table in self.database.table_names:
            stored = self.database.stored_table(candidate.table)
            self.database.replace_table_storage(
                candidate.table, stored.recluster(candidate.key)
            )
            physical = True
        else:
            self.catalog.set_clustering(
                candidate.table,
                candidate.key,
                improved_depth(self.catalog, candidate.table),
            )
        self.ledger.append(
            LedgerEntry(
                action_name=candidate.name,
                kind="recluster",
                dollars=report.one_time_dollars,
                applied_physically=physical,
            )
        )
