"""Cost-oriented auto-tuning (paper §4).

Uses the dollar as the common metric: a tuning action is worthwhile when
the computation it saves (``x`` $/hour, from workload forecasts and the
cost estimator) exceeds what it costs to store and maintain (``y``
$/hour), i.e. ``x − y > 0`` — plus a one-time application cost that sets
the break-even horizon.  The What-If Service evaluates proposals against
a hypothetical catalog overlay; accepted jobs run on background compute.

Architecture (mirrors the serving layer's request model)
--------------------------------------------------------

Tuning is a long-lived service, not a one-shot call.  The pipeline:

1. *Candidates* (:mod:`~repro.tuning.mv`, :mod:`~repro.tuning.clustering`)
   are value objects derived from the Statistics Service's summaries and
   template bindings.
2. The *What-If Service* (:mod:`~repro.tuning.whatif`) prices each
   candidate against a catalog overlay and emits a
   :class:`~repro.tuning.whatif.TuningReport` that **carries the
   candidate object** — nothing downstream parses action-name strings.
3. The *advisor* (:mod:`~repro.tuning.advisor`) greedily accepts
   profitable reports under a storage budget.
4. The *TuningService* (:mod:`~repro.tuning.service`) wraps each report
   in a typed :class:`~repro.tuning.service.TuningAction`
   (:class:`~repro.tuning.service.MaterializeView` /
   :class:`~repro.tuning.service.Recluster`) inside a
   :class:`~repro.tuning.service.Recommendation` with an explicit
   lifecycle (``PROPOSED -> ACCEPTED -> APPLYING -> APPLIED / REJECTED /
   ROLLED_BACK / FAILED``).  ``apply()`` runs on *background compute*
   (:mod:`~repro.tuning.background`), which returns an
   :class:`~repro.tuning.background.UndoAction` snapshotting prior state
   so ``rollback()`` restores bit-identical plans and catalog entries.
   Every apply/rollback flushes the warehouse's plan/skeleton/binding
   caches and meters its dollars into the originating tenants' bills.
5. A :class:`~repro.tuning.service.TuningPolicy` (cadence, storage
   budget, tenant scope, forecast-fed auto-apply gates) lets the serving
   layer drive recurring cycles between batches.
"""

from repro.tuning.mv import MVCandidate, mv_candidate_from_query, try_rewrite
from repro.tuning.clustering import ReclusterCandidate, recluster_one_time_cost
from repro.tuning.whatif import TuningReport, WhatIfService
from repro.tuning.advisor import AutoTuningAdvisor
from repro.tuning.background import BackgroundComputeService, UndoAction
from repro.tuning.service import (
    MaterializeView,
    Recluster,
    Recommendation,
    RecommendationState,
    ResizeWarehouse,
    TuningAction,
    TuningPolicy,
    TuningService,
)

__all__ = [
    "MVCandidate",
    "mv_candidate_from_query",
    "try_rewrite",
    "ReclusterCandidate",
    "recluster_one_time_cost",
    "TuningReport",
    "WhatIfService",
    "AutoTuningAdvisor",
    "BackgroundComputeService",
    "UndoAction",
    "TuningAction",
    "MaterializeView",
    "Recluster",
    "ResizeWarehouse",
    "Recommendation",
    "RecommendationState",
    "TuningPolicy",
    "TuningService",
]
