"""Cost-oriented auto-tuning (paper §4).

Uses the dollar as the common metric: a tuning action is worthwhile when
the computation it saves (``x`` $/hour, from workload forecasts and the
cost estimator) exceeds what it costs to store and maintain (``y``
$/hour), i.e. ``x − y > 0`` — plus a one-time application cost that sets
the break-even horizon.  The What-If Service evaluates proposals against
a hypothetical catalog overlay; accepted jobs run on background compute.
"""

from repro.tuning.mv import MVCandidate, mv_candidate_from_query, try_rewrite
from repro.tuning.clustering import ReclusterCandidate, recluster_one_time_cost
from repro.tuning.whatif import TuningReport, WhatIfService
from repro.tuning.advisor import AutoTuningAdvisor
from repro.tuning.background import BackgroundComputeService

__all__ = [
    "MVCandidate",
    "mv_candidate_from_query",
    "try_rewrite",
    "ReclusterCandidate",
    "recluster_one_time_cost",
    "TuningReport",
    "WhatIfService",
    "AutoTuningAdvisor",
    "BackgroundComputeService",
]
