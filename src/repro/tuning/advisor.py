"""Auto-tuning advisor: candidate generation + what-if ranking (paper §4).

Closes the loop the paper describes: the Statistics Service's summaries
and forecasts drive candidate generation (MVs from hot join templates,
reclustering from hot filtered columns), the What-If Service prices each
candidate, and the advisor greedily accepts profitable actions under a
storage budget — each accompanied by the customer-readable dollar report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.errors import TuningError
from repro.sql.binder import BoundQuery
from repro.statsvc.forecast import TemplateForecast, WorkloadForecaster
from repro.statsvc.logs import QueryLogStore
from repro.statsvc.summaries import WorkloadSummary, build_summary
from repro.tuning.clustering import ReclusterCandidate
from repro.tuning.mv import MVCandidate, mv_candidate_from_query
from repro.tuning.whatif import TuningReport, WhatIfService
from repro.util.units import GB


@dataclass
class AdvisorProposals:
    """Everything one tuning cycle produced."""

    reports: list[TuningReport] = field(default_factory=list)
    accepted: list[TuningReport] = field(default_factory=list)
    summary: WorkloadSummary | None = None

    def describe(self) -> str:
        lines = [f"{len(self.reports)} proposals, {len(self.accepted)} accepted"]
        for report in self.reports:
            lines.append(report.describe())
        return "\n".join(lines)


class AutoTuningAdvisor:
    """Generates, prices, and filters tuning proposals."""

    def __init__(
        self,
        catalog: Catalog,
        whatif: WhatIfService,
        *,
        forecaster: WorkloadForecaster | None = None,
        storage_budget_bytes: float = 50 * GB,
        min_template_count: int = 2,
        max_mv_candidates: int = 5,
        max_recluster_candidates: int = 3,
    ) -> None:
        self.catalog = catalog
        self.whatif = whatif
        self.forecaster = forecaster or WorkloadForecaster()
        self.storage_budget_bytes = storage_budget_bytes
        self.min_template_count = min_template_count
        self.max_mv_candidates = max_mv_candidates
        self.max_recluster_candidates = max_recluster_candidates

    # ------------------------------------------------------------------ #
    def propose(
        self,
        store: QueryLogStore,
        bound_queries: dict[str, BoundQuery],
        *,
        storage_budget_bytes: float | None = None,
    ) -> AdvisorProposals:
        """One tuning cycle over the logged workload.

        ``bound_queries`` maps template name -> a representative bound
        query of that family (the warehouse facade maintains these).
        ``storage_budget_bytes`` overrides the advisor's configured
        budget for this cycle only.
        """
        records = list(store)
        if not records:
            raise TuningError("no logged queries to tune against")
        summary = build_summary(records)
        forecasts = self.forecaster.forecast(store)
        workload = {
            template: (bound_queries[template], forecast)
            for template, forecast in forecasts.items()
            if template in bound_queries
            and forecast.observed_count >= self.min_template_count
        }

        proposals = AdvisorProposals(summary=summary)
        for candidate in self._mv_candidates(workload):
            try:
                proposals.reports.append(self.whatif.evaluate_mv(candidate, workload))
            except TuningError:
                continue
        for candidate in self._recluster_candidates(summary, workload):
            try:
                proposals.reports.append(
                    self.whatif.evaluate_recluster(candidate, workload)
                )
            except TuningError:
                continue

        proposals.reports.sort(key=lambda r: r.net_per_hour, reverse=True)
        proposals.accepted = self._select(
            proposals.reports,
            storage_budget_bytes
            if storage_budget_bytes is not None
            else self.storage_budget_bytes,
        )
        return proposals

    # ------------------------------------------------------------------ #
    # Candidate generation
    # ------------------------------------------------------------------ #
    def _mv_candidates(
        self, workload: dict[str, tuple[BoundQuery, TemplateForecast]]
    ) -> list[MVCandidate]:
        ranked = sorted(
            workload.items(),
            key=lambda item: item[1][1].dollars_per_hour,
            reverse=True,
        )
        candidates: list[MVCandidate] = []
        seen_shapes: set[tuple] = set()
        for template, (query, _) in ranked:
            if len(candidates) >= self.max_mv_candidates:
                break
            if len(query.tables) < 2 or not query.aggregates:
                continue
            shape = (
                tuple(sorted(t.name for t in query.tables)),
                tuple(sorted(a.sql() for a in query.aggregates)),
            )
            if shape in seen_shapes:
                continue
            seen_shapes.add(shape)
            if self.catalog.has_view(f"mv_{template}"):
                continue  # already materialized (applied in a prior cycle)
            try:
                candidates.append(
                    mv_candidate_from_query(
                        query, self.catalog, name=f"mv_{template}"
                    )
                )
            except TuningError:
                continue
        return candidates

    def _recluster_candidates(
        self,
        summary: WorkloadSummary,
        workload: dict[str, tuple[BoundQuery, TemplateForecast]],
    ) -> list[ReclusterCandidate]:
        candidates: list[ReclusterCandidate] = []
        for column, _count in summary.hottest_filters(20):
            if len(candidates) >= self.max_recluster_candidates:
                break
            table = self._owning_table(column)
            if table is None:
                continue
            entry = self.catalog.table(table)
            if entry.schema.clustering_key == column:
                continue  # already clustered on it
            if not entry.schema.column(column).dtype.is_numeric:
                continue
            if not any(
                table in q.table_names for q, _ in workload.values()
            ):
                continue
            candidates.append(ReclusterCandidate(table=table, key=column))
        return candidates

    def _owning_table(self, column: str) -> str | None:
        for entry in self.catalog.tables():
            if entry.schema.has_column(column):
                return entry.name
        return None

    # ------------------------------------------------------------------ #
    def _select(
        self, reports: list[TuningReport], storage_budget_bytes: float
    ) -> list[TuningReport]:
        """Greedy accept profitable reports under the storage budget.

        At most one recluster per table per cycle — a second accepted
        layout would silently undo the first.  The table comes from the
        typed candidate carried on the report; the old
        ``action_name.split("_on_")`` parsing broke for identifiers that
        themselves contain ``_on_``.
        """
        accepted: list[TuningReport] = []
        used_bytes = 0.0
        reclustered_tables: set[str] = set()
        for report in reports:
            if not report.profitable:
                continue
            if used_bytes + report.storage_bytes > storage_budget_bytes:
                continue
            if isinstance(report.candidate, ReclusterCandidate):
                table = report.candidate.table
                if table in reclustered_tables:
                    continue
                reclustered_tables.add(table)
            accepted.append(report)
            used_bytes += report.storage_bytes
        return accepted
