"""Materialized-view candidates, hypothetical registration, and rewriting.

The §4 running example prices an MV by the computation it saves when
substituted into queries.  A candidate here is an aggregate MV over an
inner-join: group-by columns are the workload's group keys *plus* its
filter columns (so parameterized recurring queries can still filter), and
each aggregate is stored in decomposed form (sum/count/min/max) so query
aggregates — including avg — are derivable from the view.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.catalog.catalog import Catalog, MaterializedViewDef, TableEntry
from repro.catalog.schema import Column, DataType, TableSchema
from repro.catalog.statistics import ColumnStats, TableStats
from repro.errors import TuningError
from repro.optimizer.cardinality import CardinalityEstimator
from repro.plan.expressions import (
    AggCall,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    Literal,
    UnaryOp,
    referenced_columns,
)
from repro.sql.binder import BoundQuery, JoinEdge, TableRef
from repro.storage.micropartition import COMPRESSION_RATIO


@dataclass(frozen=True)
class MVCandidate:
    """A candidate aggregate materialized view."""

    name: str
    base_tables: tuple[str, ...]
    join_edges: tuple[tuple[str, str], ...]  # normalized "t.col" pairs
    group_by: tuple[str, ...]  # unqualified column names (unique schema-wide)
    agg_sources: tuple[str, ...]  # source aggregate expressions (sql text)
    agg_calls: tuple[AggCall, ...] = ()
    est_rows: float = 0.0
    est_bytes: float = 0.0

    def sum_column(self, index: int) -> str:
        return f"mv{index}_sum"

    def min_column(self, index: int) -> str:
        return f"mv{index}_min"

    def max_column(self, index: int) -> str:
        return f"mv{index}_max"

    @property
    def count_column(self) -> str:
        return "mv_count"

    def to_view_def(self, sql: str = "") -> MaterializedViewDef:
        return MaterializedViewDef(
            name=self.name,
            base_tables=self.base_tables,
            join_keys=self.join_edges,
            group_by=self.group_by,
            aggregates=self.agg_sources,
            sql=sql,
            row_count=int(self.est_rows),
            storage_bytes=int(self.est_bytes),
        )


def _normalize_edge(edge: JoinEdge) -> tuple[str, str]:
    a = f"{edge.left.table}.{edge.left.name}"
    b = f"{edge.right.table}.{edge.right.name}"
    return tuple(sorted((a, b)))  # type: ignore[return-value]


def mv_candidate_from_query(
    query: BoundQuery,
    catalog: Catalog,
    name: str,
    *,
    estimator: CardinalityEstimator | None = None,
) -> MVCandidate:
    """Derive an MV candidate generalizing one recurring query family.

    Group-by = the query's group keys plus every filtered column, so any
    parameterization of the template can be answered from the view.
    """
    if not query.aggregates:
        raise TuningError("MV candidates require an aggregating query")
    if len(query.tables) < 2:
        raise TuningError("MV candidates require at least one join")
    estimator = estimator or CardinalityEstimator(catalog)

    group_cols: list[str] = [k.name for k in query.group_keys]
    for table, predicates in query.filters.items():
        for predicate in predicates:
            for column in sorted(referenced_columns(predicate)):
                if column not in group_cols:
                    group_cols.append(column)

    # Estimate output cardinality: groups over the un-filtered join.
    remaining = list(query.join_edges)
    rels = {
        ref.name: estimator.base_relation(
            ref.name, None, _all_column_names(catalog, ref.name)
        )
        for ref in query.tables
    }
    joined = rels[query.tables[0].name]
    merged = {query.tables[0].name}
    progress = True
    while remaining and progress:
        progress = False
        for edge in list(remaining):
            a, b = edge.tables()
            other = None
            if a in merged and b not in merged:
                other = b
            elif b in merged and a not in merged:
                other = a
            elif a in merged and b in merged:
                remaining.remove(edge)
                progress = True
                continue
            if other is not None:
                joined = estimator.join(joined, rels[other], [edge])
                merged.add(other)
                remaining.remove(edge)
                progress = True
    groups = estimator.group_count(joined, tuple(group_cols))

    num_aggs = len(query.aggregates)
    width = (len(group_cols) + 2 * num_aggs + 1) * 8.0
    return MVCandidate(
        name=name,
        base_tables=tuple(sorted(t.name for t in query.tables)),
        join_edges=tuple(sorted(_normalize_edge(e) for e in query.join_edges)),
        group_by=tuple(group_cols),
        agg_sources=tuple(a.sql() for a in query.aggregates),
        agg_calls=tuple(query.aggregates),
        est_rows=groups,
        est_bytes=groups * width,
    )


def _all_column_names(catalog: Catalog, table: str) -> tuple[str, ...]:
    return catalog.table(table).schema.column_names


# ---------------------------------------------------------------------- #
# Hypothetical registration
# ---------------------------------------------------------------------- #
def mv_schema(candidate: MVCandidate, catalog: Catalog) -> TableSchema:
    """Physical schema of the materialized view table."""
    columns: list[Column] = []
    for name in candidate.group_by:
        source = _find_column(catalog, candidate.base_tables, name)
        columns.append(Column(name, source.dtype))
    for index, agg in enumerate(candidate.agg_calls):
        if agg.func in ("sum", "avg", "count") and agg.arg is not None:
            columns.append(Column(candidate.sum_column(index), DataType.FLOAT64))
        if agg.func == "min":
            columns.append(Column(candidate.min_column(index), DataType.FLOAT64))
        if agg.func == "max":
            columns.append(Column(candidate.max_column(index), DataType.FLOAT64))
    columns.append(Column(candidate.count_column, DataType.INT64))
    return TableSchema(candidate.name, tuple(columns))


def _find_column(catalog: Catalog, tables: tuple[str, ...], name: str) -> Column:
    for table in tables:
        schema = catalog.table(table).schema
        if schema.has_column(name):
            return schema.column(name)
    raise TuningError(f"column {name!r} not found in MV base tables {tables}")


def register_hypothetical_mv(
    overlay: Catalog, candidate: MVCandidate, catalog: Catalog
) -> TableEntry:
    """Register the MV as a table in a what-if catalog overlay."""
    schema = mv_schema(candidate, catalog)
    rows = max(1, int(candidate.est_rows))
    column_stats: dict[str, ColumnStats] = {}
    dictionaries: dict[str, tuple[str, ...]] = {}
    for column in schema.columns:
        if column.name in candidate.group_by:
            source_table = _owning_table(catalog, candidate.base_tables, column.name)
            source_stats = catalog.table(source_table).stats
            if source_stats.has_column(column.name):
                base = source_stats.column(column.name)
                column_stats[column.name] = ColumnStats(
                    column=column,
                    row_count=rows,
                    ndv=min(base.ndv, rows),
                    min_value=base.min_value,
                    max_value=base.max_value,
                    histogram=base.histogram,
                )
            source_dict = catalog.table(source_table).dictionaries.get(column.name)
            if source_dict is not None:
                dictionaries[column.name] = source_dict
        else:
            column_stats[column.name] = ColumnStats(
                column=column,
                row_count=rows,
                ndv=rows,
                min_value=0.0,
                max_value=float(rows),
            )
    entry = TableEntry(
        schema=schema,
        stats=TableStats(table=candidate.name, row_count=rows, column_stats=column_stats),
        storage_bytes=int(candidate.est_bytes / COMPRESSION_RATIO),
        num_partitions=max(1, rows // 64_000),
        dictionaries=dictionaries,
    )
    overlay.register_table(entry)
    overlay.register_view(candidate.to_view_def())
    return entry


def _owning_table(catalog: Catalog, tables: tuple[str, ...], column: str) -> str:
    for table in tables:
        if catalog.table(table).schema.has_column(column):
            return table
    raise TuningError(f"column {column!r} not found in {tables}")


# ---------------------------------------------------------------------- #
# Query rewriting
# ---------------------------------------------------------------------- #
def matches(candidate: MVCandidate, query: BoundQuery) -> bool:
    """Structural containment: can ``query`` be answered from the view?"""
    if not query.aggregates or query.distinct:
        return False
    if tuple(sorted(t.name for t in query.tables)) != candidate.base_tables:
        return False
    query_edges = {(_normalize_edge(e)) for e in query.join_edges}
    if query_edges != set(candidate.join_edges):
        return False
    group_set = set(candidate.group_by)
    if any(k.name not in group_set for k in query.group_keys):
        return False
    for predicates in query.filters.values():
        for predicate in predicates:
            if not referenced_columns(predicate) <= group_set:
                return False
    if query.residuals:
        return False
    sources = {sql: i for i, sql in enumerate(candidate.agg_sources)}
    for agg in query.aggregates:
        if agg.distinct:
            return False
        if agg.sql() not in sources and not _derivable(agg, sources):
            return False
    return True


def _derivable(agg: AggCall, sources: dict[str, int]) -> bool:
    """count(*) and avg/sum/count over a stored source are derivable."""
    if agg.func == "count" and agg.arg is None:
        return True
    if agg.arg is None:
        return False
    for func in ("sum", "avg"):
        if AggCall(func=func, arg=agg.arg).sql() in sources:
            return agg.func in ("sum", "avg", "count")
    return False


def try_rewrite(query: BoundQuery, candidate: MVCandidate) -> BoundQuery | None:
    """Rewrite ``query`` to scan the MV instead of joining base tables."""
    if not matches(candidate, query):
        return None
    mv = candidate.name
    source_index = _source_index(candidate)

    new_aggs: list[AggCall] = []
    new_names: list[str] = []
    replacement: dict[str, Expr] = {}

    def register(agg: AggCall) -> str:
        name = f"agg{len(new_aggs)}"
        new_aggs.append(agg)
        new_names.append(name)
        return name

    for agg, old_name in zip(query.aggregates, query.agg_names):
        index = source_index.get(_source_key(agg))
        if agg.func == "count":
            name = register(
                AggCall(func="sum", arg=ColumnRef(candidate.count_column, mv))
            )
            replacement[old_name] = ColumnRef(name)
        elif agg.func == "sum":
            assert index is not None
            name = register(
                AggCall(func="sum", arg=ColumnRef(candidate.sum_column(index), mv))
            )
            replacement[old_name] = ColumnRef(name)
        elif agg.func == "avg":
            assert index is not None
            sum_name = register(
                AggCall(func="sum", arg=ColumnRef(candidate.sum_column(index), mv))
            )
            count_name = register(
                AggCall(func="sum", arg=ColumnRef(candidate.count_column, mv))
            )
            replacement[old_name] = BinaryOp(
                "/", ColumnRef(sum_name), ColumnRef(count_name)
            )
        elif agg.func == "min":
            assert index is not None
            name = register(
                AggCall(func="min", arg=ColumnRef(candidate.min_column(index), mv))
            )
            replacement[old_name] = ColumnRef(name)
        elif agg.func == "max":
            assert index is not None
            name = register(
                AggCall(func="max", arg=ColumnRef(candidate.max_column(index), mv))
            )
            replacement[old_name] = ColumnRef(name)
        else:  # pragma: no cover - matches() filters these out
            return None

    rebound_filters: list[Expr] = []
    for predicates in query.filters.values():
        for predicate in predicates:
            rebound_filters.append(_rebind(predicate, mv))

    select_exprs = [_substitute(e, replacement, mv) for e in query.select_exprs]
    having = (
        _substitute(query.having, replacement, mv)
        if query.having is not None
        else None
    )
    return BoundQuery(
        sql=f"/* rewritten over {mv} */ {query.sql}",
        tables=[TableRef(name=mv, alias=mv)],
        filters={mv: rebound_filters},
        join_edges=[],
        residuals=[],
        group_keys=[ColumnRef(k.name, mv) for k in query.group_keys],
        aggregates=new_aggs,
        agg_names=new_names,
        select_exprs=select_exprs,
        select_names=list(query.select_names),
        having=having,
        order_by=list(query.order_by),
        limit=query.limit,
    )


def _source_key(agg: AggCall) -> str:
    if agg.arg is None:
        return "count(*)"
    return AggCall(func="sum", arg=agg.arg).sql() if agg.func in ("sum", "avg", "count") else agg.sql()


def _source_index(candidate: MVCandidate) -> dict[str, int]:
    index: dict[str, int] = {}
    for i, agg in enumerate(candidate.agg_calls):
        index[agg.sql()] = i
        if agg.arg is not None and agg.func in ("sum", "avg"):
            index[AggCall(func="sum", arg=agg.arg).sql()] = i
    return index


def _rebind(expr: Expr, table: str) -> Expr:
    """Re-point column refs at the MV table."""
    if isinstance(expr, ColumnRef):
        return ColumnRef(expr.name, table)
    if isinstance(expr, BinaryOp):
        return BinaryOp(expr.op, _rebind(expr.left, table), _rebind(expr.right, table))
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _rebind(expr.operand, table))
    if isinstance(expr, FuncCall):
        return FuncCall(expr.name, tuple(_rebind(a, table) for a in expr.args))
    if isinstance(expr, InList):
        return InList(_rebind(expr.operand, table), expr.values, expr.negated)
    return expr


def _substitute(expr: Expr, replacement: dict[str, Expr], mv: str) -> Expr:
    """Replace old aggregate-output refs; leave group-key refs bare."""
    if isinstance(expr, ColumnRef):
        if expr.name in replacement:
            return replacement[expr.name]
        return ColumnRef(expr.name)
    if isinstance(expr, BinaryOp):
        return BinaryOp(
            expr.op,
            _substitute(expr.left, replacement, mv),
            _substitute(expr.right, replacement, mv),
        )
    if isinstance(expr, UnaryOp):
        return UnaryOp(expr.op, _substitute(expr.operand, replacement, mv))
    if isinstance(expr, FuncCall):
        return FuncCall(
            expr.name, tuple(_substitute(a, replacement, mv) for a in expr.args)
        )
    if isinstance(expr, InList):
        return InList(
            _substitute(expr.operand, replacement, mv), expr.values, expr.negated
        )
    return expr


def mv_build_sql(candidate: MVCandidate) -> str:
    """SQL that materializes the view's contents (for real application)."""
    select_parts: list[str] = list(candidate.group_by)
    for index, agg in enumerate(candidate.agg_calls):
        assert agg.arg is not None or agg.func == "count"
        if agg.func in ("sum", "avg", "count") and agg.arg is not None:
            select_parts.append(
                f"sum({agg.arg.sql()}) AS {candidate.sum_column(index)}"
            )
        elif agg.func == "min":
            select_parts.append(f"min({agg.arg.sql()}) AS {candidate.min_column(index)}")
        elif agg.func == "max":
            select_parts.append(f"max({agg.arg.sql()}) AS {candidate.max_column(index)}")
    select_parts.append(f"count(*) AS {candidate.count_column}")

    joins = " AND ".join(f"{a} = {b}" for a, b in candidate.join_edges)
    sql = (
        f"SELECT {', '.join(select_parts)} "
        f"FROM {', '.join(candidate.base_tables)} "
    )
    if joins:
        sql += f"WHERE {joins} "
    sql += f"GROUP BY {', '.join(candidate.group_by)}"
    return sql
