"""Tuning-layer request model: typed actions, Recommendations, TuningService.

Mirror of the serving redesign in :mod:`repro.core.service`: tuning is a
long-lived *service* owned by the warehouse, not a one-shot call.  The
paper's §4 loop (Statistics Service -> What-If pricing -> background
compute) keeps its components, but the API around them becomes:

- :class:`TuningAction` — a frozen, typed action hierarchy
  (:class:`MaterializeView`, :class:`Recluster`, the future
  :class:`ResizeWarehouse`).  Each action *carries its candidate object*
  end-to-end, so nothing downstream ever re-derives a candidate by
  parsing ``action_name`` strings (the old
  ``recluster_<table>_on_<key>`` round-trip broke for identifiers that
  contain ``_on_`` and silently skipped MVs whose template binding had
  gone stale).
- :class:`Recommendation` — one proposal's lifecycle
  (``PROPOSED -> ACCEPTED -> APPLYING -> APPLIED / REJECTED /
  ROLLED_BACK / FAILED``) with per-stage wall timings, the What-If
  :class:`~repro.tuning.whatif.TuningReport` attached, and the undo
  token captured at apply time.
- :class:`TuningService` — owned by the warehouse; holds one persistent
  :class:`~repro.tuning.whatif.WhatIfService` /
  :class:`~repro.tuning.advisor.AutoTuningAdvisor` /
  :class:`~repro.tuning.background.BackgroundComputeService` and exposes
  ``propose() / apply(rec) / apply_all() / rollback(rec)``.  Apply and
  rollback are transactional over the catalog (state snapshotted before
  mutation), flush the warehouse's plan/skeleton/binding caches and
  template bindings so serving never reuses a pre-tuning plan, and meter
  background dollars into the originating tenants'
  :class:`~repro.core.service.TenantBill`\\ s.
- :class:`TuningPolicy` — cadence, storage budget, tenant scope, and
  forecast-fed auto-apply thresholds, so the serving layer
  (:class:`~repro.core.service.Session` /
  :class:`~repro.core.service.ServingScheduler`) can drive recurring
  cycles between batches.

Following *Saving Money for Analytical Workloads in the Cloud*
(Srivastava et al.): dollar-valued actions must stay revisitable and
reversible as workloads drift, not fire-and-forget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, ClassVar, Iterable

from repro.core.journal import (
    RollbackCommit,
    RollbackIntent,
    TuningCommit,
    TuningFailed,
    TuningIntent,
    capture_undo_snapshot,
    shares_tuple,
)
from repro.core.resilience import CircuitBreaker
from repro.errors import ReproError, TuningError, TuningStateError
from repro.statsvc.logs import QueryLogStore, TenantLogView
from repro.tuning.advisor import AdvisorProposals, AutoTuningAdvisor
from repro.tuning.background import BackgroundComputeService, UndoAction
from repro.tuning.clustering import ReclusterCandidate
from repro.tuning.mv import MVCandidate
from repro.tuning.whatif import TuningReport, WhatIfService
from repro.util.units import GB

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.warehouse import CostIntelligentWarehouse


# --------------------------------------------------------------------- #
# Typed actions
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class TuningAction:
    """Base class for typed tuning actions.

    Subclasses are frozen value objects that carry the candidate the
    What-If Service priced, so apply/rollback operate on the exact
    object that was evaluated.
    """

    kind: ClassVar[str] = "abstract"

    @property
    def name(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True)
class MaterializeView(TuningAction):
    """Build (and register) an aggregate materialized view."""

    candidate: MVCandidate
    kind: ClassVar[str] = "materialized-view"

    @property
    def name(self) -> str:
        return self.candidate.name


@dataclass(frozen=True)
class Recluster(TuningAction):
    """Re-sort a table on a new clustering key."""

    candidate: ReclusterCandidate
    kind: ClassVar[str] = "recluster"

    @property
    def name(self) -> str:
        return self.candidate.name


@dataclass(frozen=True)
class ResizeWarehouse(TuningAction):
    """Change the warehouse's node count (future action kind).

    Typed now so the lifecycle and report plumbing are in place; the
    background executor for it does not exist yet, so applying one
    raises :class:`~repro.errors.TuningError`.
    """

    target_nodes: int
    kind: ClassVar[str] = "resize-warehouse"

    @property
    def name(self) -> str:
        return f"resize_warehouse_to_{self.target_nodes}"


# --------------------------------------------------------------------- #
# Recommendation lifecycle
# --------------------------------------------------------------------- #
class RecommendationState(Enum):
    """Lifecycle states of one tuning recommendation."""

    PROPOSED = "proposed"
    ACCEPTED = "accepted"
    APPLYING = "applying"
    APPLIED = "applied"
    REJECTED = "rejected"
    ROLLED_BACK = "rolled_back"
    FAILED = "failed"


#: Legal forward transitions; anything else raises TuningStateError.
_TRANSITIONS: dict[RecommendationState, set[RecommendationState]] = {
    RecommendationState.PROPOSED: {
        RecommendationState.ACCEPTED,
        RecommendationState.REJECTED,
    },
    RecommendationState.ACCEPTED: {
        RecommendationState.APPLYING,
        RecommendationState.REJECTED,
    },
    RecommendationState.REJECTED: {RecommendationState.ACCEPTED},
    RecommendationState.APPLYING: {
        RecommendationState.APPLIED,
        RecommendationState.FAILED,
    },
    RecommendationState.APPLIED: {
        RecommendationState.ROLLED_BACK,
        RecommendationState.FAILED,
    },
    RecommendationState.ROLLED_BACK: set(),
    RecommendationState.FAILED: set(),
}


@dataclass
class Recommendation:
    """One priced tuning proposal and its apply/rollback lifecycle.

    Carries the typed :class:`TuningAction` (with its candidate object),
    the What-If :class:`~repro.tuning.whatif.TuningReport`, per-stage
    wall timings (``propose`` / ``apply`` / ``rollback``), and the
    tenant-attribution shares used to meter background spend.
    """

    rec_id: int
    action: TuningAction
    report: TuningReport
    state: RecommendationState = RecommendationState.PROPOSED
    tenant_shares: dict[str, float] = field(default_factory=dict)
    stage_timings: dict[str, float] = field(default_factory=dict)
    error: Exception | None = None
    _undo: UndoAction | None = field(default=None, repr=False)

    @property
    def applied(self) -> bool:
        return self.state is RecommendationState.APPLIED

    @property
    def accepted(self) -> bool:
        return self.state is RecommendationState.ACCEPTED

    def describe(self) -> str:
        from repro.util.units import fmt_dollars

        head = (
            f"[{self.state.value}] #{self.rec_id} {self.action.name} "
            f"({self.action.kind}) net={fmt_dollars(self.report.net_per_hour)}/h"
        )
        if self.stage_timings:
            stages = ", ".join(
                f"{name}={seconds * 1e3:.2f}ms"
                for name, seconds in self.stage_timings.items()
            )
            head += f"\n  stages: {stages}"
        return head


# --------------------------------------------------------------------- #
# Policy
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class TuningPolicy:
    """When and how aggressively the warehouse tunes itself.

    ``cadence_queries`` / ``cadence_seconds`` make the service recurring:
    the serving layer calls :meth:`TuningService.maybe_run_cycle` after
    every batch, and a cycle runs when either cadence has elapsed
    (``cadence_queries`` counts the warehouse-wide log — an O(1) check).
    ``tenant`` scopes the advisor's input to one tenant's log view.
    Auto-apply is forecast-fed: a recommendation is applied without a
    human in the loop only when its net rate clears
    ``auto_apply_net_threshold`` *and* its break-even horizon (one-time
    cost divided by the forecast-driven net rate) is within
    ``auto_apply_break_even_hours``.
    """

    cadence_queries: int | None = None
    cadence_seconds: float | None = None
    tenant: str | None = None
    storage_budget_bytes: float = 50 * GB
    min_forecast_observations: int = 2
    auto_apply: bool = False
    auto_apply_net_threshold: float = 0.0
    auto_apply_break_even_hours: float = float("inf")

    def __post_init__(self) -> None:
        if self.cadence_queries is not None and self.cadence_queries < 1:
            raise TuningError(
                f"cadence_queries must be >= 1, got {self.cadence_queries}"
            )
        if self.cadence_seconds is not None and self.cadence_seconds <= 0:
            raise TuningError(
                f"cadence_seconds must be positive, got {self.cadence_seconds}"
            )

    @property
    def recurring(self) -> bool:
        """Whether the serving layer should drive cycles automatically."""
        return self.cadence_queries is not None or self.cadence_seconds is not None

    def auto_apply_allows(self, report: TuningReport) -> bool:
        """The forecast-fed auto-apply gate for one accepted report."""
        if not self.auto_apply:
            return False
        if report.net_per_hour < self.auto_apply_net_threshold:
            return False
        return report.break_even_hours <= self.auto_apply_break_even_hours


# --------------------------------------------------------------------- #
# Service
# --------------------------------------------------------------------- #
class TuningService:
    """The warehouse's persistent auto-tuning service.

    Owns one What-If Service, one advisor, and one background-compute
    executor for the warehouse's lifetime (the old
    ``run_tuning_cycle`` reconstructed all three per call), keeps the
    full :class:`Recommendation` history, and guarantees serving-layer
    coherence: every apply/rollback flushes the plan, skeleton, and
    binding caches plus the advisor's template bindings, and registers /
    unregisters applied MVs with the serving path's rewriter.
    """

    def __init__(
        self,
        warehouse: "CostIntelligentWarehouse",
        policy: TuningPolicy | None = None,
        *,
        whatif: WhatIfService | None = None,
        advisor: AutoTuningAdvisor | None = None,
        background: BackgroundComputeService | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        self.warehouse = warehouse
        self.policy = policy or TuningPolicy()
        self.whatif = whatif or WhatIfService(warehouse.catalog, warehouse.estimator)
        self.advisor = advisor or AutoTuningAdvisor(
            warehouse.catalog,
            self.whatif,
            storage_budget_bytes=self.policy.storage_budget_bytes,
            min_template_count=self.policy.min_forecast_observations,
        )
        self.background = background or BackgroundComputeService(
            database=warehouse.database,
            catalog=warehouse.catalog,
            fault_hook=lambda: warehouse._fire_fault("tuning_apply"),
        )
        #: Full recommendation history, every cycle, every state.
        self.recommendations: list[Recommendation] = []
        #: The raw advisor output of the latest cycle (legacy shape).
        self.last_proposals: AdvisorProposals | None = None
        self.cycles_run = 0
        #: Failure-domain observability: background cycles swallow
        #: ``ReproError`` by design (tuning must never fail foreground
        #: serving), but swallowed errors must not *vanish* — the last
        #: one is kept here, and the consecutive-failure count feeds the
        #: circuit breaker that stops a persistently failing tuner from
        #: burning background dollars.  Surfaced by
        #: ``warehouse.describe_health()``.
        self.last_error: Exception | None = None
        self.consecutive_failures = 0
        self.breaker = breaker or CircuitBreaker("tuning")
        #: Next recommendation id (a plain int, not an iterator, so a
        #: recovery checkpoint can snapshot and restore it).
        self._next_id = 1
        self._last_cycle_log_len = 0
        self._last_cycle_clock: float | None = None

    # -- observability -------------------------------------------------- #
    @property
    def background_dollars(self) -> float:
        """Total background-compute spend across applies and rollbacks."""
        return self.background.total_spend

    @property
    def applied_recommendations(self) -> list[Recommendation]:
        return [r for r in self.recommendations if r.applied]

    def describe(self) -> str:
        lines = [
            f"tuning service: {self.cycles_run} cycles, "
            f"{len(self.recommendations)} recommendations, "
            f"${self.background_dollars:.4f} background spend"
        ]
        lines.extend(rec.describe() for rec in self.recommendations)
        return "\n".join(lines)

    # -- proposal -------------------------------------------------------- #
    def propose(
        self, *, storage_budget_bytes: float | None = None
    ) -> list[Recommendation]:
        """One advisor cycle over the (policy-scoped) logged workload.

        Every priced proposal becomes a :class:`Recommendation`; the
        advisor's greedy budget selection moves winners to ``ACCEPTED``
        and the rest to ``REJECTED`` (a rejected recommendation can be
        re-accepted manually via :meth:`accept`).
        """
        store = self._scoped_logs()
        start = time.perf_counter()
        proposals = self.advisor.propose(
            store,
            self.warehouse.template_queries,
            storage_budget_bytes=storage_budget_bytes,
        )
        elapsed = time.perf_counter() - start
        self.last_proposals = proposals
        accepted_ids = {id(report) for report in proposals.accepted}
        recommendations: list[Recommendation] = []
        for report in proposals.reports:
            rec = Recommendation(
                rec_id=self._new_id(),
                action=self._action_for(report),
                report=report,
                tenant_shares=self._tenant_shares(store, report),
            )
            rec.stage_timings["propose"] = elapsed
            self._transition(
                rec,
                RecommendationState.ACCEPTED
                if id(report) in accepted_ids
                else RecommendationState.REJECTED,
            )
            recommendations.append(rec)
            self.recommendations.append(rec)
        self.cycles_run += 1
        self._last_cycle_log_len = len(self.warehouse.logs)
        self._last_cycle_clock = self.warehouse.clock
        return recommendations

    def accept(self, rec: Recommendation) -> Recommendation:
        """Manually accept a proposed/rejected recommendation."""
        self._transition(rec, RecommendationState.ACCEPTED)
        return rec

    def reject(self, rec: Recommendation) -> Recommendation:
        """Manually reject a proposed/accepted recommendation."""
        self._transition(rec, RecommendationState.REJECTED)
        return rec

    # -- apply / rollback ------------------------------------------------ #
    def _new_id(self) -> int:
        rec_id = self._next_id
        self._next_id += 1
        return rec_id

    def apply(self, rec: Recommendation) -> Recommendation:
        """Apply one accepted recommendation on background compute.

        Transactional over the catalog: the undo token snapshots prior
        state before anything mutates.  On success the plan caches and
        template bindings are flushed (serving must never reuse a
        pre-tuning plan), applied MVs are registered with the serving
        rewriter, and the one-time dollars are metered into the
        originating tenants' bills.

        With a journal attached this is a **two-record protocol**: a
        :class:`~repro.core.journal.TuningIntent` carrying a declarative
        pre-mutation :class:`~repro.core.journal.UndoSnapshot` lands
        before the catalog mutates, and a
        :class:`~repro.core.journal.TuningCommit` lands after.  A crash
        between the two leaves the apply *in doubt*; recovery rolls it
        back via the journaled snapshot (see
        :mod:`repro.core.recovery`).
        """
        warehouse = self.warehouse
        journaled = warehouse.journal is not None
        self._transition(rec, RecommendationState.APPLYING)
        start = time.perf_counter()
        snapshot = None
        if journaled:
            snapshot = capture_undo_snapshot(
                rec.action, rec.report, warehouse.database, warehouse.catalog
            )
            warehouse._journal_append(
                TuningIntent(
                    rec_id=rec.rec_id,
                    name=rec.action.name,
                    kind=rec.action.kind,
                    undo=snapshot,
                    tenant_shares=shares_tuple(rec.tenant_shares),
                )
            )
        try:
            undo = self._dispatch_apply(rec.action, rec.report)
        except Exception as exc:
            rec.error = exc
            rec.stage_timings["apply"] = time.perf_counter() - start
            if journaled:
                # In-process failure: nothing mutated (dispatch is
                # all-or-nothing before its first catalog write), so the
                # intent is closed as failed rather than left in doubt.
                warehouse._journal_append(
                    TuningFailed(
                        rec_id=rec.rec_id,
                        name=rec.action.name,
                        kind=rec.action.kind,
                        message=str(exc),
                    )
                )
            self._transition(rec, RecommendationState.FAILED)
            raise
        rec._undo = undo
        if journaled:
            warehouse._fire_fault("crash_pre_commit")
            warehouse._journal_append(
                TuningCommit(
                    rec_id=rec.rec_id,
                    name=rec.action.name,
                    kind=rec.action.kind,
                    dollars=rec.report.one_time_dollars,
                    tenant_shares=shares_tuple(rec.tenant_shares),
                    candidate=(
                        rec.action.candidate
                        if isinstance(rec.action, MaterializeView)
                        else None
                    ),
                    physical=undo.physical,
                )
            )
        if isinstance(rec.action, MaterializeView):
            self.warehouse._register_applied_mv(rec.action.candidate)
        self._meter(rec, rec.report.one_time_dollars)
        self.warehouse.invalidate_plan_cache()
        rec.stage_timings["apply"] = time.perf_counter() - start
        self._transition(rec, RecommendationState.APPLIED)
        return rec

    def apply_all(
        self, recommendations: Iterable[Recommendation] | None = None
    ) -> list[Recommendation]:
        """Apply every accepted recommendation (default: all pending).

        A recommendation that fails to apply (e.g. a duplicate of one
        already applied in an earlier cycle) is marked ``FAILED`` with
        the error carried on it, and the batch proceeds — one bad action
        must not strand later accepted recommendations half-applied.
        Returns the successfully applied recommendations.
        """
        targets = (
            list(recommendations)
            if recommendations is not None
            else [r for r in self.recommendations if r.accepted]
        )
        applied: list[Recommendation] = []
        for rec in targets:
            if not rec.accepted:
                continue
            try:
                applied.append(self.apply(rec))
            except ReproError as exc:
                self.last_error = exc
                continue  # carried on rec.error, state FAILED
        return applied

    def rollback(self, rec: Recommendation) -> Recommendation:
        """Reverse an applied recommendation.

        Physically restores the snapshotted prior state (bit-identical
        catalog entries; for reclustering, the exact prior stored
        table), meters the reversal's cost, and flushes the plan caches
        so serving immediately returns to pre-tuning plans.
        """
        if rec.state is not RecommendationState.APPLIED:
            raise TuningStateError(
                f"cannot roll back recommendation #{rec.rec_id} in state "
                f"{rec.state.value!r}; only applied recommendations roll back",
                state=rec.state.value,
            )
        assert rec._undo is not None
        warehouse = self.warehouse
        journaled = warehouse.journal is not None
        undo = rec._undo
        start = time.perf_counter()
        if journaled:
            # The intent carries the *original apply-time* undo snapshot
            # (kept on the durable record): if the process dies
            # mid-rollback, recovery completes the reversal forward.
            durable = warehouse._durable_tuning.get(rec.rec_id)
            warehouse._journal_append(
                RollbackIntent(
                    rec_id=rec.rec_id,
                    name=rec.action.name,
                    kind=rec.action.kind,
                    undo=durable.undo if durable is not None else None,
                    dollars=undo.dollars,
                    tenant_shares=shares_tuple(rec.tenant_shares),
                )
            )
        try:
            self.background.rollback(undo)
        except Exception as exc:
            rec.error = exc
            rec.stage_timings["rollback"] = time.perf_counter() - start
            if journaled:
                # Close the in-doubt window: an in-process rollback
                # failure (fault fired before anything mutated) must not
                # be "completed forward" by a later crash recovery.
                warehouse._journal_append(
                    TuningFailed(
                        rec_id=rec.rec_id,
                        name=rec.action.name,
                        kind=rec.action.kind,
                        message=str(exc),
                    )
                )
            self._transition(rec, RecommendationState.FAILED)
            raise
        if journaled:
            warehouse._fire_fault("crash_pre_commit")
            warehouse._journal_append(
                RollbackCommit(
                    rec_id=rec.rec_id,
                    name=rec.action.name,
                    kind=rec.action.kind,
                    dollars=undo.dollars,
                    tenant_shares=shares_tuple(rec.tenant_shares),
                    candidate=(
                        rec.action.candidate
                        if isinstance(rec.action, MaterializeView)
                        else None
                    ),
                    physical=undo.physical,
                )
            )
        if isinstance(rec.action, MaterializeView):
            self.warehouse._unregister_applied_mv(rec.action.candidate)
        self._meter(rec, undo.dollars)
        self.warehouse.invalidate_plan_cache()
        rec.stage_timings["rollback"] = time.perf_counter() - start
        rec._undo = None
        self._transition(rec, RecommendationState.ROLLED_BACK)
        return rec

    # -- recurring cycles ------------------------------------------------ #
    def maybe_run_cycle(self) -> list[Recommendation] | None:
        """Run a cycle if the policy's cadence has elapsed.

        Called by the serving layer between batches.  Auto-applies the
        accepted recommendations that clear the policy's forecast-fed
        gate.  Returns the cycle's recommendations, or ``None`` when no
        cycle was due (or the log was empty).
        """
        if not self.policy.recurring:
            return None
        due = False
        if self.policy.cadence_queries is not None:
            # Cadence counts the shared log (O(1) length check — this
            # runs after every submit); the tenant scope, if any,
            # applies to the advisor's *input*, not the trigger.
            due = (
                len(self.warehouse.logs) - self._last_cycle_log_len
                >= self.policy.cadence_queries
            )
        if not due and self.policy.cadence_seconds is not None:
            due = (
                self._last_cycle_clock is None
                or self.warehouse.clock - self._last_cycle_clock
                >= self.policy.cadence_seconds
            )
        if not due:
            return None
        if not self.breaker.allow():
            # OPEN: a persistently failing tuner must stop burning
            # background dollars.  The cadence advances so the skipped
            # cycle is not re-attempted after every query; the breaker's
            # call-counted cooldown re-probes after enough skipped
            # cycles.
            self._last_cycle_log_len = len(self.warehouse.logs)
            self._last_cycle_clock = self.warehouse.clock
            return None
        # Background tuning must never fail foreground serving: any
        # library error (bind/execution/catalog, not just TuningError)
        # stays on the recommendation / is dropped — but never silently:
        # it is recorded on ``last_error`` and counted into the breaker.
        # The cadence counters advance so a poisoned cycle is not
        # retried per query.
        try:
            recommendations = self.propose()
        except ReproError as exc:
            self._last_cycle_log_len = len(self.warehouse.logs)
            self._last_cycle_clock = self.warehouse.clock
            self._note_cycle_failure(exc)
            return None
        cycle_error: Exception | None = None
        for rec in recommendations:
            if rec.accepted and self.policy.auto_apply_allows(rec.report):
                try:
                    self.apply(rec)
                except ReproError as exc:
                    cycle_error = exc  # carried on rec.error, state FAILED
                    continue
        if cycle_error is not None:
            self._note_cycle_failure(cycle_error)
        else:
            self._note_cycle_success()
        return recommendations

    def _note_cycle_failure(self, exc: Exception) -> None:
        self.last_error = exc
        self.consecutive_failures += 1
        self.breaker.record_failure()

    def _note_cycle_success(self) -> None:
        self.consecutive_failures = 0
        self.breaker.record_success()

    # -- internals ------------------------------------------------------- #
    def _scoped_logs(self) -> "QueryLogStore | TenantLogView":
        if self.policy.tenant is not None:
            return self.warehouse.logs.for_tenant(self.policy.tenant)
        return self.warehouse.logs

    def _action_for(self, report: TuningReport) -> TuningAction:
        candidate = report.candidate
        if isinstance(candidate, MVCandidate):
            return MaterializeView(candidate)
        if isinstance(candidate, ReclusterCandidate):
            return Recluster(candidate)
        raise TuningError(
            f"report {report.action_name!r} carries no typed candidate "
            "(was it produced by the What-If Service?)"
        )

    def _dispatch_apply(
        self, action: TuningAction, report: TuningReport
    ) -> UndoAction:
        if isinstance(action, MaterializeView):
            name = action.candidate.name
            catalog = self.warehouse.catalog
            if catalog.has_view(name) or catalog.has_table(name):
                raise TuningError(
                    f"{name!r} already exists in the catalog; roll the prior "
                    "application back (or rename the candidate) first"
                )
            return self.background.apply_mv(action.candidate, report)
        if isinstance(action, Recluster):
            return self.background.apply_recluster(action.candidate, report)
        raise TuningError(
            f"no background executor for {action.kind!r} actions yet"
        )

    def _tenant_shares(
        self, store: "QueryLogStore | TenantLogView", report: TuningReport
    ) -> dict[str, float]:
        templates = {impact.template for impact in report.impacts}
        counts = store.tenant_counts(templates)
        total = sum(counts.values())
        if not total:
            return {}
        return {tenant: count / total for tenant, count in counts.items()}

    def _meter(self, rec: Recommendation, dollars: float) -> None:
        """Charge background spend to the tenants that motivated it."""
        if dollars <= 0.0:
            return
        from repro.core.service import TenantBill

        warehouse = self.warehouse
        shares = rec.tenant_shares or {"default": 1.0}
        with warehouse._serving_lock:
            for tenant, share in shares.items():
                bill = warehouse.billing.get(tenant)
                if bill is None:
                    bill = warehouse.billing[tenant] = TenantBill(tenant)
                bill.charge_background(dollars * share)

    def _transition(
        self, rec: Recommendation, target: RecommendationState
    ) -> None:
        if target not in _TRANSITIONS[rec.state]:
            raise TuningStateError(
                f"recommendation #{rec.rec_id} cannot move "
                f"{rec.state.value!r} -> {target.value!r}",
                state=rec.state.value,
            )
        rec.state = target
