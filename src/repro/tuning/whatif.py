"""What-If Service (paper §4).

"For each tuning proposal, the What-If Service generates a relevant
workload prediction based on the Statistics Service.  Then it invokes
the cost estimator to determine whether the tuning action is
'profitable'."

Evaluation recipe: plan each affected query family against the current
catalog and against a hypothetical overlay with the action applied; the
per-query dollar delta times the forecast arrival rate is the savings
rate ``x``; storage + maintenance is the cost rate ``y``; accept when
``x − y > 0``, and report the break-even horizon against the one-time
application cost so an average customer can read the trade-off.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog
from repro.cost.estimator import CostEstimator
from repro.dop.constraints import Constraint
from repro.dop.planner import DopPlanner
from repro.errors import TuningError
from repro.optimizer.dag_planner import DagPlanner
from repro.plan.pipelines import decompose_pipelines
from repro.sql.binder import BoundQuery
from repro.statsvc.forecast import TemplateForecast
from repro.tuning.clustering import (
    ReclusterCandidate,
    apply_hypothetical_recluster,
    recluster_one_time_cost,
)
from repro.tuning.mv import MVCandidate, register_hypothetical_mv, try_rewrite
from repro.util.units import GB, HOURS_PER_MONTH


@dataclass
class TemplateImpact:
    """Per-template dollar impact of a tuning action."""

    template: str
    rate_per_hour: float
    dollars_before: float
    dollars_after: float

    @property
    def savings_per_hour(self) -> float:
        return (self.dollars_before - self.dollars_after) * self.rate_per_hour


@dataclass
class TuningReport:
    """The customer-facing dollar report for one tuning proposal.

    ``candidate`` carries the evaluated candidate object itself
    (:class:`~repro.tuning.mv.MVCandidate` or
    :class:`~repro.tuning.clustering.ReclusterCandidate`) so downstream
    consumers — the advisor's selection, the
    :class:`~repro.tuning.service.TuningService` apply path — never have
    to round-trip through ``action_name`` string parsing.
    """

    action_name: str
    kind: str  # "materialized-view" | "recluster"
    savings_per_hour: float  # x
    cost_per_hour: float  # y
    one_time_dollars: float
    impacts: list[TemplateImpact] = field(default_factory=list)
    storage_bytes: float = 0.0
    notes: str = ""
    candidate: "MVCandidate | ReclusterCandidate | None" = None

    @property
    def net_per_hour(self) -> float:
        """x − y: the paper's accept-if-positive quantity."""
        return self.savings_per_hour - self.cost_per_hour

    @property
    def profitable(self) -> bool:
        return self.net_per_hour > 0

    @property
    def break_even_hours(self) -> float:
        if self.net_per_hour <= 0:
            return float("inf")
        return self.one_time_dollars / self.net_per_hour

    def describe(self) -> str:
        from repro.util.units import fmt_dollars

        verdict = "ACCEPT" if self.profitable else "REJECT"
        lines = [
            f"[{verdict}] {self.action_name} ({self.kind})",
            f"  savings x = {fmt_dollars(self.savings_per_hour)}/h, "
            f"cost y = {fmt_dollars(self.cost_per_hour)}/h, "
            f"net = {fmt_dollars(self.net_per_hour)}/h",
            f"  one-time = {fmt_dollars(self.one_time_dollars)}, "
            f"break-even = "
            + (
                f"{self.break_even_hours:.1f} h"
                if self.break_even_hours != float("inf")
                else "never"
            ),
        ]
        for impact in self.impacts:
            lines.append(
                f"    {impact.template}: {fmt_dollars(impact.dollars_before)} -> "
                f"{fmt_dollars(impact.dollars_after)} per query "
                f"x {impact.rate_per_hour:.2f}/h"
            )
        if self.notes:
            lines.append(f"  note: {self.notes}")
        return "\n".join(lines)


class WhatIfService:
    """Prices tuning proposals against hypothetical catalogs."""

    def __init__(
        self,
        catalog: Catalog,
        estimator: CostEstimator | None = None,
        *,
        evaluation_constraint: Constraint | None = None,
        max_dop: int = 64,
        storage_price_gb_month: float = 0.023,
        churn_fraction_per_hour: float = 0.001,
    ) -> None:
        self.catalog = catalog
        self.estimator = estimator or CostEstimator()
        self.evaluation_constraint = evaluation_constraint
        self.max_dop = max_dop
        self.storage_price_gb_month = storage_price_gb_month
        self.churn_fraction_per_hour = churn_fraction_per_hour

    # ------------------------------------------------------------------ #
    # Shared query pricing
    # ------------------------------------------------------------------ #
    def query_dollars(self, query: BoundQuery, catalog: Catalog) -> float:
        """Cost-optimal dollars to answer ``query`` on ``catalog``.

        Uses the workload's constraint when one is configured; otherwise
        prices the cost-minimal (DOP-planned) execution.
        """
        planner = DagPlanner(catalog)
        plan = planner.plan(query)
        dag = decompose_pipelines(plan)
        if self.evaluation_constraint is not None:
            dop_planner = DopPlanner(self.estimator, max_dop=self.max_dop)
            dop_plan = dop_planner.plan(dag, self.evaluation_constraint)
            return dop_plan.estimate.total_dollars
        dops = {p.pipeline_id: 1 for p in dag}
        return self.estimator.estimate_dag(dag, dops).total_dollars

    # ------------------------------------------------------------------ #
    # Materialized views
    # ------------------------------------------------------------------ #
    def evaluate_mv(
        self,
        candidate: MVCandidate,
        workload: dict[str, tuple[BoundQuery, TemplateForecast]],
    ) -> TuningReport:
        """Price an MV candidate against the forecast workload."""
        overlay = self.catalog.overlay()
        register_hypothetical_mv(overlay, candidate, self.catalog)

        impacts: list[TemplateImpact] = []
        for template, (query, forecast) in workload.items():
            rewritten = try_rewrite(query, candidate)
            if rewritten is None:
                continue
            before = self.query_dollars(query, self.catalog)
            after = self.query_dollars(rewritten, overlay)
            impacts.append(
                TemplateImpact(
                    template=template,
                    rate_per_hour=forecast.rate_per_hour,
                    dollars_before=before,
                    dollars_after=after,
                )
            )
        if not impacts:
            raise TuningError(
                f"MV candidate {candidate.name} matches no workload template"
            )
        savings = sum(i.savings_per_hour for i in impacts)

        one_time = self._mv_build_dollars(candidate)
        storage_per_hour = (
            (candidate.est_bytes / GB)
            * self.storage_price_gb_month
            / HOURS_PER_MONTH
        )
        maintenance_per_hour = one_time * self.churn_fraction_per_hour
        return TuningReport(
            action_name=candidate.name,
            kind="materialized-view",
            savings_per_hour=savings,
            cost_per_hour=storage_per_hour + maintenance_per_hour,
            one_time_dollars=one_time,
            impacts=impacts,
            storage_bytes=candidate.est_bytes,
            notes=(
                f"maintenance modeled as {self.churn_fraction_per_hour:.2%} of "
                "build cost per hour (incremental refresh on base-table churn)"
            ),
            candidate=candidate,
        )

    def _mv_build_dollars(self, candidate: MVCandidate) -> float:
        """One-time cost: run the view-defining join + aggregation once."""
        from repro.sql.binder import Binder
        from repro.tuning.mv import mv_build_sql

        binder = Binder(self.catalog)
        build_query = binder.bind_sql(mv_build_sql(candidate))
        return self.query_dollars(build_query, self.catalog)

    # ------------------------------------------------------------------ #
    # Reclustering
    # ------------------------------------------------------------------ #
    def evaluate_recluster(
        self,
        candidate: ReclusterCandidate,
        workload: dict[str, tuple[BoundQuery, TemplateForecast]],
    ) -> TuningReport:
        """Price reclustering ``table`` on ``key`` against the workload."""
        overlay = self.catalog.overlay()
        apply_hypothetical_recluster(overlay, candidate)

        impacts: list[TemplateImpact] = []
        for template, (query, forecast) in workload.items():
            if candidate.table not in query.table_names:
                continue
            before = self.query_dollars(query, self.catalog)
            after = self.query_dollars(query, overlay)
            impacts.append(
                TemplateImpact(
                    template=template,
                    rate_per_hour=forecast.rate_per_hour,
                    dollars_before=before,
                    dollars_after=after,
                )
            )
        if not impacts:
            raise TuningError(
                f"recluster candidate {candidate.name} touches no workload query"
            )
        savings = sum(i.savings_per_hour for i in impacts)
        _, one_time = recluster_one_time_cost(candidate, self.catalog, self.estimator.hw)

        # Keeping the layout clustered as data arrives costs a share of
        # the full rewrite per hour, proportional to churn.
        maintenance = one_time * self.churn_fraction_per_hour
        return TuningReport(
            action_name=candidate.name,
            kind="recluster",
            savings_per_hour=savings,
            cost_per_hour=maintenance,
            one_time_dollars=one_time,
            impacts=impacts,
            notes="savings come from zone-map pruning on the new clustering key",
            candidate=candidate,
        )
