"""Provisioning/optimization baselines the paper contrasts against.

- T-shirt sizing (paper Figure 1 / §2): a fixed warehouse size for the
  whole workload, chosen by the user up front.
- Performance-only planning: classical latency-minimizing optimization
  that ignores dollars.
- Serverless per-task execution (Starling/Lambada family): cloud
  functions priced per GB-second, avoiding over-provisioning at the cost
  of storage-mediated exchanges.

Run-time scaling baselines (interval and per-stage scalers) live in
:mod:`repro.monitor.policies`.
"""

from repro.baselines.tshirt import TShirtProvisioner, uniform_dops
from repro.baselines.perfonly import PerformanceOnlyPlanner
from repro.baselines.serverless import ServerlessConfig, serverless_estimate

__all__ = [
    "TShirtProvisioner",
    "uniform_dops",
    "PerformanceOnlyPlanner",
    "ServerlessConfig",
    "serverless_estimate",
]
