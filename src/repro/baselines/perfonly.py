"""Performance-only planning baseline.

Decades of optimizer research "focused on optimizing the performance p
under a fixed amount of resources, leaving the cost C behind" (§1).
This baseline searches DOPs purely for latency — the classical
objective — and accepts whatever the bill turns out to be.  Comparing
its dollars against the bi-objective optimizer at equal SLA compliance
is experiment E4's headline row.
"""

from __future__ import annotations

from repro.cost.estimate import CostEstimate
from repro.cost.estimator import CostEstimator
from repro.dop.planner import DopPlan
from repro.plan.pipelines import PipelineDag


class PerformanceOnlyPlanner:
    """Greedy latency minimization, cost-blind."""

    def __init__(self, estimator: CostEstimator, *, max_dop: int = 64) -> None:
        self.estimator = estimator
        self.max_dop = max_dop

    def plan(self, dag: PipelineDag) -> DopPlan:
        dops = {p.pipeline_id: 1 for p in dag}
        current = self.estimator.estimate_dag(dag, dops)
        evaluations = 1
        improved = True
        while improved:
            improved = False
            best: tuple[float, dict[int, int], CostEstimate] | None = None
            for pid in dops:
                if dops[pid] >= self.max_dop:
                    continue
                trial = dict(dops)
                trial[pid] = min(self.max_dop, dops[pid] * 2)
                estimate = self.estimator.estimate_dag(dag, trial)
                evaluations += 1
                gain = current.latency - estimate.latency
                if gain <= 1e-9:
                    continue
                if best is None or estimate.latency < best[0]:
                    best = (estimate.latency, trial, estimate)
            if best is not None:
                dops, current = best[1], best[2]
                improved = True
        return DopPlan(
            dops=dops,
            estimate=current,
            feasible=True,
            evaluations=evaluations,
            constraint=None,
        )
