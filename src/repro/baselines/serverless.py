"""Serverless query execution baseline (Starling/Lambada family, §1).

"Starling and Lambada used cloud functions to execute queries to save
cost by avoiding resource over-provisioning."  The model: every pipeline
fans out to many small function workers billed per GB-second with no
idle cost and no warm pool, but all exchanges are staged through shared
object storage (functions cannot talk to each other directly).

Cheap at low utilization and for short bursts; the storage-mediated
exchange tax and per-invocation overhead make it lose on shuffle-heavy
queries — the crossover experiments E4/E11 report.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cost.estimate import CostEstimate, PipelineCost
from repro.cost.operator_models import OperatorModels
from repro.cost.volumes import pipeline_volumes
from repro.errors import EstimationError
from repro.plan.physical import PhysExchange
from repro.plan.pipelines import PipelineDag
from repro.util.units import GB, MB


@dataclass(frozen=True)
class ServerlessConfig:
    """Cloud-function pricing and capability envelope (Lambda-like)."""

    function_memory_gb: float = 2.0
    function_cores: float = 1.0
    price_per_gb_second: float = 1.6667e-5
    price_per_invocation: float = 2e-7
    invocation_startup_s: float = 0.25
    max_functions_per_stage: int = 512
    target_bytes_per_function: float = 256 * MB
    storage_bandwidth_per_function: float = 90 * MB  # S3 stream per function

    @property
    def price_per_function_second(self) -> float:
        return self.function_memory_gb * self.price_per_gb_second


def serverless_estimate(
    dag: PipelineDag,
    models: OperatorModels,
    config: ServerlessConfig | None = None,
    overrides: dict[int, float] | None = None,
) -> CostEstimate:
    """Latency and dollars for executing the DAG on cloud functions.

    Per pipeline: the function count follows input volume; compute rates
    scale with the single function core; every exchange becomes a write +
    read through object storage at function-grade bandwidth.
    """
    config = config or ServerlessConfig()
    estimate = CostEstimate(latency=0.0, machine_seconds=0.0, dollars=0.0)
    hw = models.hw
    core_scale = config.function_cores / hw.node.cores

    finish: dict[int, float] = {}
    invocations_total = 0
    for pipeline in dag.topological_order():
        volumes = pipeline_volumes(pipeline, 1, overrides)
        input_bytes = volumes[0].bytes_in if volumes else 0.0
        functions = max(
            1,
            min(
                config.max_functions_per_stage,
                math.ceil(input_bytes / config.target_bytes_per_function),
            ),
        )
        invocations_total += functions

        # Compute time: reuse node-level CPU models scaled to one core,
        # spread over the function fleet.
        stream = 0.0
        storage_tax = 0.0
        for index, volume in enumerate(volumes):
            if isinstance(volume.op.node, PhysExchange):
                # Write out + read back through the object store.
                per_fn = volume.bytes_in / functions
                storage_tax += 2.0 * per_fn / config.storage_bandwidth_per_function
                storage_tax += 2.0 * hw.store.request_latency_s
                continue
            op_time = models.op_time(volume, 1, pipeline=pipeline, index=index)
            stream = max(stream, op_time.stream_s / (core_scale * functions))
        duration = stream + storage_tax + config.invocation_startup_s

        start = max(
            (finish[dep] for dep in pipeline.blocking_deps), default=0.0
        )
        finish[pipeline.pipeline_id] = start + duration
        machine = functions * duration
        estimate.machine_seconds += machine
        estimate.pipelines[pipeline.pipeline_id] = PipelineCost(
            pipeline_id=pipeline.pipeline_id,
            dop=functions,
            start=start,
            duration=duration,
            waste=0.0,  # functions release instantly: no pinned idle time
            bottleneck="serverless",
            source_rows=volumes[0].rows_out if volumes else 0.0,
        )

    if not finish:
        raise EstimationError("empty pipeline DAG")
    estimate.latency = max(finish.values())
    estimate.dollars = (
        estimate.machine_seconds * config.price_per_function_second
        + invocations_total * config.price_per_invocation
    )
    return estimate
