"""T-shirt-size provisioning baseline (paper Figure 1, §2).

"Before submitting any queries, a user must determine the cluster size
by choosing a predefined 'T-shirt' size ... This basic service model
often leads to inefficient resource utilization."

The baseline runs every pipeline of every query at the warehouse's size
(uniform DOP).  ``TShirtProvisioner.pick_for_sla`` models the common
user behavior the paper describes: pick the smallest size whose
*estimated* latency meets the SLA, then over-provision by a safety
factor because users "lack the expertise to accurately estimate the
resource necessary".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compute.pricing import TSHIRT_SIZES
from repro.cost.estimate import CostEstimate
from repro.cost.estimator import CostEstimator
from repro.errors import OptimizerError
from repro.plan.pipelines import PipelineDag


def uniform_dops(dag: PipelineDag, size: int) -> dict[int, int]:
    """Every pipeline runs at the warehouse size (no per-pipeline DOP)."""
    if size < 1:
        raise OptimizerError(f"warehouse size must be >= 1, got {size}")
    return {p.pipeline_id: size for p in dag}


@dataclass
class TShirtChoice:
    """A selected warehouse size and its predicted profile."""

    size_name: str
    nodes: int
    estimate: CostEstimate


class TShirtProvisioner:
    """Chooses one T-shirt size per workload, Snowflake-UI style."""

    def __init__(
        self,
        estimator: CostEstimator,
        *,
        overprovision_steps: int = 1,
    ) -> None:
        self.estimator = estimator
        self.overprovision_steps = overprovision_steps

    def estimate_at_size(self, dag: PipelineDag, nodes: int) -> CostEstimate:
        return self.estimator.estimate_dag(dag, uniform_dops(dag, nodes))

    def pick_for_sla(
        self, dags: list[PipelineDag], sla_seconds: float
    ) -> TShirtChoice:
        """Smallest size meeting the SLA for *all* queries, then bumped by
        ``overprovision_steps`` ladder steps (the §2 user behavior)."""
        names = list(TSHIRT_SIZES)
        chosen_index: int | None = None
        chosen_estimate: CostEstimate | None = None
        for index, name in enumerate(names):
            nodes = TSHIRT_SIZES[name]
            estimates = [self.estimate_at_size(dag, nodes) for dag in dags]
            if all(e.latency <= sla_seconds for e in estimates):
                chosen_index = index
                chosen_estimate = estimates[0]
                break
        if chosen_index is None:
            chosen_index = len(names) - 1
            chosen_estimate = self.estimate_at_size(
                dags[0], TSHIRT_SIZES[names[-1]]
            )
        bumped = min(len(names) - 1, chosen_index + self.overprovision_steps)
        name = names[bumped]
        assert chosen_estimate is not None
        if bumped != chosen_index:
            chosen_estimate = self.estimate_at_size(dags[0], TSHIRT_SIZES[name])
        return TShirtChoice(
            size_name=name, nodes=TSHIRT_SIZES[name], estimate=chosen_estimate
        )
