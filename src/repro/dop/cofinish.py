"""The co-finish heuristic (paper §3.2).

"A heuristic that we use to speed up DOP planning ... is to make sure
that these (concurrent) dependent pipelines finish roughly at the same
time to minimize resource waste due to pipeline waiting.  Specifically,
if the two dependent pipelines ... have input cardinalities C1 and C2,
and the throughput functions ... are T1(·) and T2(·), we ensure that the
DOP assignments satisfy C1/T1(DOP1) ≈ C2/T2(DOP2)."

Implementation: given a sibling group (pipelines sharing a consumer) and
a target completion time, assign each sibling the smallest DOP whose
modeled duration meets the target.  Because durations are not perfectly
divisible (startup overheads, integral DOPs), "roughly at the same time"
is the best achievable — exactly as the paper phrases it.
"""

from __future__ import annotations

from repro.cost.operator_models import OperatorModels
from repro.errors import OptimizerError
from repro.plan.pipelines import Pipeline, PipelineDag


def min_dop_for_duration(
    pipeline: Pipeline,
    target_seconds: float,
    models: OperatorModels,
    *,
    max_dop: int,
    overrides: dict[int, float] | None = None,
) -> int:
    """Smallest DOP whose modeled duration is <= ``target_seconds``.

    Durations are not monotone in DOP forever (exchange setup eventually
    dominates), so this scans upward and returns the best-duration DOP
    if the target is unreachable.
    """
    if target_seconds <= 0:
        raise OptimizerError(f"target duration must be positive: {target_seconds}")
    best_dop = 1
    best_duration = float("inf")
    dop = 1
    while dop <= max_dop:
        duration = models.pipeline_timing(pipeline, dop, overrides).duration
        if duration <= target_seconds:
            return dop
        if duration < best_duration:
            best_duration = duration
            best_dop = dop
        dop *= 2
    return best_dop


def cofinish_dops(
    siblings: list[Pipeline],
    target_seconds: float,
    models: OperatorModels,
    *,
    max_dop: int,
    overrides: dict[int, float] | None = None,
) -> dict[int, int]:
    """Co-finishing DOPs for one sibling group against a common target."""
    return {
        p.pipeline_id: min_dop_for_duration(
            p, target_seconds, models, max_dop=max_dop, overrides=overrides
        )
        for p in siblings
    }


def equalize_siblings(
    dag: PipelineDag,
    dops: dict[int, int],
    models: OperatorModels,
    *,
    max_dop: int,
    overrides: dict[int, float] | None = None,
) -> dict[int, int]:
    """Rebalance every sibling group to co-finish (polish pass).

    For each group, the slowest sibling's duration becomes the target;
    other siblings shrink to the smallest DOP still meeting it.  The
    group's completion time (max finish) never increases, so query
    latency is preserved while idle pinned time shrinks.
    """
    adjusted = dict(dops)
    seen_groups: set[int] = set()
    for pipeline in dag:
        consumer = pipeline.consumer_id
        if consumer is None or consumer in seen_groups:
            continue
        seen_groups.add(consumer)
        group = dag.siblings(pipeline.pipeline_id)
        if len(group) < 2:
            continue
        durations = {
            p.pipeline_id: models.pipeline_timing(
                p, adjusted[p.pipeline_id], overrides
            ).duration
            for p in group
        }
        target = max(durations.values())
        for sibling in group:
            pid = sibling.pipeline_id
            candidate = min_dop_for_duration(
                sibling, target, models, max_dop=max_dop, overrides=overrides
            )
            if candidate < adjusted[pid]:
                adjusted[pid] = candidate
    return adjusted
