"""User constraints for bi-objective optimization.

The paper "downgrades" Pareto-front search into constrained single-
objective optimization: users state either a latency SLA (minimize
dollars subject to it) or a cloud budget (minimize latency subject to
it).  A constraint object carries exactly one of the two.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cost.estimate import CostEstimate
from repro.errors import OptimizerError


@dataclass(frozen=True)
class Constraint:
    """Either ``latency_sla`` seconds or ``budget`` dollars (exactly one)."""

    latency_sla: float | None = None
    budget: float | None = None

    def __post_init__(self) -> None:
        if (self.latency_sla is None) == (self.budget is None):
            raise OptimizerError(
                "specify exactly one of latency_sla or budget"
            )
        if self.latency_sla is not None and self.latency_sla <= 0:
            raise OptimizerError(f"latency SLA must be positive: {self.latency_sla}")
        if self.budget is not None and self.budget <= 0:
            raise OptimizerError(f"budget must be positive: {self.budget}")

    @property
    def is_sla(self) -> bool:
        return self.latency_sla is not None

    # ------------------------------------------------------------------ #
    # Objective / feasibility
    # ------------------------------------------------------------------ #
    def objective(self, estimate: CostEstimate) -> float:
        """The quantity to minimize under this constraint."""
        return estimate.total_dollars if self.is_sla else estimate.latency

    def bound_value(self, estimate: CostEstimate) -> float:
        """The constrained quantity."""
        return estimate.latency if self.is_sla else estimate.total_dollars

    def bound(self) -> float:
        return self.latency_sla if self.is_sla else self.budget  # type: ignore[return-value]

    def satisfied(self, estimate: CostEstimate, *, slack: float = 1.0) -> bool:
        return self.bound_value(estimate) <= self.bound() * slack

    def describe(self) -> str:
        if self.is_sla:
            return f"min $ s.t. latency <= {self.latency_sla:.3g}s"
        return f"min latency s.t. cost <= ${self.budget:.4g}"


def sla_constraint(seconds: float) -> Constraint:
    """Minimize dollars subject to ``latency <= seconds``."""
    return Constraint(latency_sla=seconds)


def budget_constraint(dollars: float) -> Constraint:
    """Minimize latency subject to ``cost <= dollars``."""
    return Constraint(budget=dollars)
