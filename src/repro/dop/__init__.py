"""DOP planning (paper §3.2): per-pipeline degrees of parallelism.

Searches DOP assignments for a pipeline DAG under a user constraint —
minimum dollars subject to a latency SLA, or minimum latency subject to a
budget — using the cost estimator as the referee, with the co-finish
heuristic (C1/T1(DOP1) ≈ C2/T2(DOP2)) pruning the sibling search space.
"""

from repro.dop.constraints import Constraint, budget_constraint, sla_constraint
from repro.dop.cofinish import cofinish_dops, equalize_siblings
from repro.dop.planner import DopPlan, DopPlanner, exhaustive_search

__all__ = [
    "Constraint",
    "sla_constraint",
    "budget_constraint",
    "cofinish_dops",
    "equalize_siblings",
    "DopPlan",
    "DopPlanner",
    "exhaustive_search",
]
