"""DOP planner: constrained search over per-pipeline parallelism.

Greedy marginal search with the cost estimator as referee:

- **min cost s.t. latency SLA**: grow the DOP of the pipeline whose
  doubling buys the most latency per added dollar until the SLA holds,
  then co-finish-polish sibling groups and trim DOPs that no longer pay
  for themselves.
- **min latency s.t. budget**: grow DOPs while the budget allows,
  picking the best latency-per-dollar move each round.

The search evaluates the analytic estimator O(pipelines · log max_dop)
times — the complexity the paper demands ("comparable to existing
optimizers") versus the exponential unified search it rejects.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.cost.estimate import CostEstimate
from repro.cost.estimator import CostEstimator
from repro.cost.operator_models import PipelineTiming
from repro.cost.query_simulator import ScheduleSweeper
from repro.dop.cofinish import equalize_siblings
from repro.dop.constraints import Constraint
from repro.errors import EstimationError, InfeasibleConstraintError
from repro.plan.pipelines import PipelineDag


class _IncrementalCoster:
    """Incremental DAG re-coster for one ``(dag, overrides)`` search.

    Pipeline timings are memoized per ``(pipeline_id, dop)``, so costing
    a candidate move re-times only the pipeline whose DOP changed and
    re-runs the cheap ASAP schedule over known timings — O(1) timing
    evaluations per candidate instead of O(pipelines).  Produces
    bit-identical estimates to :meth:`CostEstimator.estimate_dag` (it
    runs the same scheduling code over the same timings).
    """

    def __init__(
        self,
        estimator: CostEstimator,
        dag: PipelineDag,
        overrides: dict[int, float] | None,
    ) -> None:
        self.estimator = estimator
        self.dag = dag
        self.overrides = overrides
        self._timings: dict[tuple[int, int], PipelineTiming] = {}
        self._sweeper: ScheduleSweeper | None = None
        self._scan_dollars = 0.0
        self.evaluations = 0

    def estimate(self, dops: dict[int, int]) -> CostEstimate:
        self.evaluations += 1
        timings: dict[int, PipelineTiming] = {}
        for pipeline in self.dag:
            pid = pipeline.pipeline_id
            dop = dops.get(pid)
            if dop is None:
                raise EstimationError(f"no DOP for pipeline {pid}")
            timings[pid] = self._timing(pipeline, dop)
        return self.estimator.estimate_schedule(self.dag, dops, timings)

    def _timing(self, pipeline, dop: int) -> PipelineTiming:
        key = (pipeline.pipeline_id, dop)
        timing = self._timings.get(key)
        if timing is None:
            timing = self.estimator.pipeline_timing(pipeline, dop, self.overrides)
            self._timings[key] = timing
        return timing

    def sweep(
        self,
        dops: dict[int, int],
        candidates: list[tuple[int, int]],
        prune_gainless: bool = False,
    ) -> list[tuple[float, float]]:
        """``(latency, total_dollars)`` per ``(pid, new_dop)`` candidate.

        One timing evaluation per candidate (the changed pipeline at its
        new DOP; everything else is already memoized) plus a single lean
        :class:`~repro.cost.query_simulator.ScheduleSweeper` pass — the
        batched greedy round's replacement for per-candidate full
        schedules.  Metrics are bit-identical to per-candidate
        :meth:`estimate` calls.

        ``prune_gainless`` (gain-scored growth rounds only): candidates
        provably unable to reduce latency — their pipeline is not an
        ancestor of the whole critical set — are neither timed nor
        scheduled; they report the base metrics, which the caller's
        ``gain > epsilon`` test discards exactly as if they had been
        costed.
        """
        self.evaluations += len(candidates)
        if self._sweeper is None:
            self._sweeper = ScheduleSweeper(self.dag, self.estimator.models)
            self._scan_dollars = self.estimator.scan_request_dollars(self.dag)
        sweeper = self._sweeper
        timings = self._timings  # inlined hot path of _timing()
        dop_list: list[int] = []
        durations: list[float] = []
        for pipeline in self.dag:
            pid = pipeline.pipeline_id
            dop = dops[pid]
            dop_list.append(dop)
            timing = timings.get((pid, dop))
            if timing is None:
                timing = self.estimator.pipeline_timing(pipeline, dop, self.overrides)
                timings[(pid, dop)] = timing
            durations.append(timing.duration)
        index = sweeper.index
        rate = self.estimator.price_per_node_second
        scan_dollars = self._scan_dollars

        keep = None
        state = None
        base_metric: tuple[float, float] | None = None
        if prune_gainless:
            keep, base_latency, base_machine, state = sweeper.filter_gainful(
                dop_list,
                durations,
                [(index[pid], new_dop) for pid, new_dop in candidates],
            )
            base_metric = (base_latency, base_machine * rate + scan_dollars)
            if not any(keep):
                return [base_metric] * len(candidates)

        moves: list[tuple[int, int, float]] = []
        for position, (pid, new_dop) in enumerate(candidates):
            if keep is not None and not keep[position]:
                continue
            timing = timings.get((pid, new_dop))
            if timing is None:
                timing = self.estimator.pipeline_timing(
                    self.dag.pipeline(pid), new_dop, self.overrides
                )
                timings[(pid, new_dop)] = timing
            moves.append((index[pid], new_dop, timing.duration))
        swept = iter(sweeper.sweep(dop_list, durations, moves, state))
        results: list[tuple[float, float]] = []
        for position in range(len(candidates)):
            if keep is not None and not keep[position]:
                results.append(base_metric)  # type: ignore[arg-type]
            else:
                latency, machine_seconds = next(swept)
                results.append((latency, machine_seconds * rate + scan_dollars))
        return results


class _NaiveCoster:
    """Full re-estimation per candidate (the pre-overhaul baseline, kept
    behind ``DopPlanner(incremental=False)`` for A/B benchmarking)."""

    def __init__(
        self,
        estimator: CostEstimator,
        dag: PipelineDag,
        overrides: dict[int, float] | None,
    ) -> None:
        self.estimator = estimator
        self.dag = dag
        self.overrides = overrides
        self.evaluations = 0

    def estimate(self, dops: dict[int, int]) -> CostEstimate:
        self.evaluations += 1
        return self.estimator.estimate_dag(self.dag, dops, self.overrides)


@dataclass
class DopPlan:
    """A DOP assignment plus its predicted cost profile."""

    dops: dict[int, int]
    estimate: CostEstimate
    feasible: bool
    evaluations: int = 0
    constraint: Constraint | None = None

    @property
    def max_dop(self) -> int:
        return max(self.dops.values(), default=0)

    def describe(self) -> str:
        parts = [f"P{pid}:{dop}" for pid, dop in sorted(self.dops.items())]
        status = "feasible" if self.feasible else "INFEASIBLE"
        header = f"DOPs [{', '.join(parts)}] ({status})"
        return f"{header}\n{self.estimate.describe()}"


class DopPlanner:
    """Searches DOP assignments for one pipeline DAG."""

    def __init__(
        self,
        estimator: CostEstimator,
        *,
        max_dop: int = 64,
        enforce_sla_strictly: bool = False,
        incremental: bool = True,
        batched: bool = True,
    ) -> None:
        self.estimator = estimator
        self.max_dop = max_dop
        self.enforce_sla_strictly = enforce_sla_strictly
        self.incremental = incremental
        #: Cost whole greedy growth rounds with one lean schedule sweep
        #: (requires the incremental coster); ``batched=False`` keeps the
        #: per-candidate full schedules for A/B parity checks.
        self.batched = batched

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def plan(
        self,
        dag: PipelineDag,
        constraint: Constraint,
        overrides: dict[int, float] | None = None,
    ) -> DopPlan:
        coster_cls = _IncrementalCoster if self.incremental else _NaiveCoster
        coster = coster_cls(self.estimator, dag, overrides)
        if constraint.is_sla:
            dops, feasible = self._plan_for_sla(dag, constraint, overrides, coster)
        else:
            dops, feasible = self._plan_for_budget(dag, constraint, overrides, coster)
        estimate = coster.estimate(dops)
        if not feasible and self.enforce_sla_strictly:
            raise InfeasibleConstraintError(
                f"no DOP assignment satisfies {constraint.describe()}",
                best_achievable=constraint.bound_value(estimate),
            )
        return DopPlan(
            dops=dops,
            estimate=estimate,
            feasible=feasible,
            evaluations=coster.evaluations,
            constraint=constraint,
        )

    # ------------------------------------------------------------------ #
    # SLA mode: min dollars s.t. latency <= SLA
    # ------------------------------------------------------------------ #
    def _plan_for_sla(
        self,
        dag: PipelineDag,
        constraint: Constraint,
        overrides: dict[int, float] | None,
        coster: _IncrementalCoster | _NaiveCoster,
    ) -> tuple[dict[int, int], bool]:
        sla = constraint.bound()
        dops = {p.pipeline_id: 1 for p in dag}
        latency, dollars = self._assignment_metrics(dops, coster)

        # Phase 1: grow until the SLA is met or no move helps.
        while latency > sla:
            move = self._best_growth_move(dops, latency, dollars, coster)
            if move is None:
                break
            dops, latency, dollars = move
        feasible = latency <= sla

        # Phase 2: co-finish polish (never increases latency).
        polished = equalize_siblings(
            dag, dops, self.estimator.models, max_dop=self.max_dop, overrides=overrides
        )
        if polished != dops:
            polished_latency, polished_dollars = self._assignment_metrics(
                polished, coster
            )
            if polished_latency <= max(latency, sla):
                dops = polished
                latency, dollars = polished_latency, polished_dollars

        # Phase 3: trim DOPs whose halving keeps the SLA and saves money.
        if self.batched and isinstance(coster, _IncrementalCoster):
            dops = self._trim_batched(dops, latency, dollars, sla, feasible, coster)
        else:
            improved = True
            while improved:
                improved = False
                for pid in sorted(dops):
                    if dops[pid] <= 1:
                        continue
                    halved = max(1, dops[pid] // 2)
                    trial_latency, trial_dollars = self._move_metrics(
                        dops, pid, halved, coster
                    )
                    if trial_dollars < dollars and (
                        trial_latency <= sla or not feasible
                    ):
                        dops = dict(dops)
                        dops[pid] = halved
                        latency, dollars = trial_latency, trial_dollars
                        improved = True
        return dops, feasible

    def _trim_batched(
        self,
        dops: dict[int, int],
        latency: float,
        dollars: float,
        sla: float,
        feasible: bool,
        coster: _IncrementalCoster,
    ) -> dict[int, int]:
        """Phase-3 trim with whole-scan sweeps.

        Reproduces the sequential-greedy trim exactly: each pipeline is
        considered once per round in ascending id order and an accepted
        halving takes effect immediately.  A sweep evaluates every
        not-yet-visited candidate against the *current* assignment; the
        first acceptance invalidates the rest of the sweep, so the scan
        resumes just after it with a fresh sweep.  The common final
        round (nothing improves) collapses from one schedule per
        pipeline to a single sweep.
        """
        pids = sorted(dops)
        improved = True
        while improved:
            improved = False
            position = 0
            while position < len(pids):
                candidates = [
                    (pid, dops[pid] // 2) for pid in pids[position:] if dops[pid] > 1
                ]
                if not candidates:
                    break
                applied = False
                for (pid, halved), (trial_latency, trial_dollars) in zip(
                    candidates, coster.sweep(dops, candidates)
                ):
                    if trial_dollars < dollars and (
                        trial_latency <= sla or not feasible
                    ):
                        dops = dict(dops)
                        dops[pid] = halved
                        latency, dollars = trial_latency, trial_dollars
                        improved = True
                        applied = True
                        position = pids.index(pid) + 1
                        break
                if not applied:
                    break
        return dops

    def _move_metrics(
        self,
        dops: dict[int, int],
        pid: int,
        new_dop: int,
        coster: _IncrementalCoster | _NaiveCoster,
    ) -> tuple[float, float]:
        """``(latency, total_dollars)`` of one single-pipeline move."""
        if self.batched and isinstance(coster, _IncrementalCoster):
            return coster.sweep(dops, [(pid, new_dop)])[0]
        trial = dict(dops)
        trial[pid] = new_dop
        estimate = coster.estimate(trial)
        return estimate.latency, estimate.total_dollars

    def _assignment_metrics(
        self,
        dops: dict[int, int],
        coster: _IncrementalCoster | _NaiveCoster,
    ) -> tuple[float, float]:
        """``(latency, total_dollars)`` of a whole assignment.

        Batched mode evaluates it as a sweep over one no-op move (the
        base assignment is ``dops`` itself), reusing the bit-identical
        lean scheduling path instead of materializing a full estimate.
        """
        if self.batched and isinstance(coster, _IncrementalCoster):
            pid = next(iter(dops))
            return coster.sweep(dops, [(pid, dops[pid])])[0]
        estimate = coster.estimate(dops)
        return estimate.latency, estimate.total_dollars

    def _best_growth_move(
        self,
        dops: dict[int, int],
        current_latency: float,
        current_dollars: float,
        coster: _IncrementalCoster | _NaiveCoster,
        budget: float | None = None,
    ) -> tuple[dict[int, int], float, float] | None:
        """The doubling with the best latency gain per added dollar.

        With ``budget`` set (budget mode), moves that break the budget
        are discarded.  Returns the mutated assignment plus its metrics.
        Batched mode scores the whole round from one sweep; the metrics
        are bit-identical to per-candidate full estimates, so the winner
        (and therefore the search trajectory) is exactly the
        per-candidate one.
        """
        candidates = [
            (pid, min(self.max_dop, dops[pid] * 2))
            for pid in dops
            if dops[pid] < self.max_dop
        ]
        if not candidates:
            return None
        if self.batched and isinstance(coster, _IncrementalCoster):
            metrics = coster.sweep(dops, candidates, prune_gainless=True)
        else:
            metrics = []
            for pid, new_dop in candidates:
                trial = dict(dops)
                trial[pid] = new_dop
                estimate = coster.estimate(trial)
                metrics.append((estimate.latency, estimate.total_dollars))

        best: tuple[float, int, int, float, float] | None = None
        for (pid, new_dop), (latency, dollars) in zip(candidates, metrics):
            if budget is not None and dollars > budget:
                continue
            gain = current_latency - latency
            if gain <= 1e-9:
                continue
            extra = max(1e-12, dollars - current_dollars)
            score = gain / extra
            if best is None or score > best[0]:
                best = (score, pid, new_dop, latency, dollars)
        if best is None:
            return None
        trial = dict(dops)
        trial[best[1]] = best[2]
        return trial, best[3], best[4]

    # ------------------------------------------------------------------ #
    # Budget mode: min latency s.t. dollars <= budget
    # ------------------------------------------------------------------ #
    def _plan_for_budget(
        self,
        dag: PipelineDag,
        constraint: Constraint,
        overrides: dict[int, float] | None,
        coster: _IncrementalCoster | _NaiveCoster,
    ) -> tuple[dict[int, int], bool]:
        budget = constraint.bound()
        dops = {p.pipeline_id: 1 for p in dag}
        latency, dollars = self._assignment_metrics(dops, coster)
        if dollars > budget:
            # Even the minimal assignment exceeds the budget.
            return dops, False

        while True:
            move = self._best_growth_move(dops, latency, dollars, coster, budget)
            if move is None:
                break
            dops, latency, dollars = move

        polished = equalize_siblings(
            dag, dops, self.estimator.models, max_dop=self.max_dop, overrides=overrides
        )
        if polished != dops:
            polished_latency, polished_dollars = self._assignment_metrics(
                polished, coster
            )
            if (
                polished_dollars <= budget
                and polished_latency <= latency + 1e-9
            ):
                dops = polished
        return dops, True


def exhaustive_search(
    dag: PipelineDag,
    constraint: Constraint,
    estimator: CostEstimator,
    *,
    dop_choices: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    overrides: dict[int, float] | None = None,
) -> DopPlan:
    """Brute-force optimum over a DOP grid (tests & heuristic-quality
    experiments only — exponential in the number of pipelines)."""
    pids = [p.pipeline_id for p in dag]
    best: tuple[float, dict[int, int], CostEstimate] | None = None
    evaluations = 0
    for combo in itertools.product(dop_choices, repeat=len(pids)):
        dops = dict(zip(pids, combo))
        estimate = estimator.estimate_dag(dag, dops, overrides)
        evaluations += 1
        if not constraint.satisfied(estimate):
            continue
        objective = constraint.objective(estimate)
        if best is None or objective < best[0]:
            best = (objective, dops, estimate)
    if best is None:
        # Infeasible everywhere: fall back to the bound-minimizing combo.
        for combo in itertools.product(dop_choices, repeat=len(pids)):
            dops = dict(zip(pids, combo))
            estimate = estimator.estimate_dag(dag, dops, overrides)
            evaluations += 1
            value = constraint.bound_value(estimate)
            if best is None or value < best[0]:
                best = (value, dops, estimate)
        assert best is not None
        return DopPlan(
            dops=best[1],
            estimate=best[2],
            feasible=False,
            evaluations=evaluations,
            constraint=constraint,
        )
    return DopPlan(
        dops=best[1],
        estimate=best[2],
        feasible=True,
        evaluations=evaluations,
        constraint=constraint,
    )
