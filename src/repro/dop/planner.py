"""DOP planner: constrained search over per-pipeline parallelism.

Greedy marginal search with the cost estimator as referee:

- **min cost s.t. latency SLA**: grow the DOP of the pipeline whose
  doubling buys the most latency per added dollar until the SLA holds,
  then co-finish-polish sibling groups and trim DOPs that no longer pay
  for themselves.
- **min latency s.t. budget**: grow DOPs while the budget allows,
  picking the best latency-per-dollar move each round.

The search evaluates the analytic estimator O(pipelines · log max_dop)
times — the complexity the paper demands ("comparable to existing
optimizers") versus the exponential unified search it rejects.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.cost.estimate import CostEstimate
from repro.cost.estimator import CostEstimator
from repro.cost.operator_models import PipelineTiming
from repro.dop.cofinish import equalize_siblings
from repro.dop.constraints import Constraint
from repro.errors import EstimationError, InfeasibleConstraintError
from repro.plan.pipelines import PipelineDag


class _IncrementalCoster:
    """Incremental DAG re-coster for one ``(dag, overrides)`` search.

    Pipeline timings are memoized per ``(pipeline_id, dop)``, so costing
    a candidate move re-times only the pipeline whose DOP changed and
    re-runs the cheap ASAP schedule over known timings — O(1) timing
    evaluations per candidate instead of O(pipelines).  Produces
    bit-identical estimates to :meth:`CostEstimator.estimate_dag` (it
    runs the same scheduling code over the same timings).
    """

    def __init__(
        self,
        estimator: CostEstimator,
        dag: PipelineDag,
        overrides: dict[int, float] | None,
    ) -> None:
        self.estimator = estimator
        self.dag = dag
        self.overrides = overrides
        self._timings: dict[tuple[int, int], PipelineTiming] = {}
        self.evaluations = 0

    def estimate(self, dops: dict[int, int]) -> CostEstimate:
        self.evaluations += 1
        timings: dict[int, PipelineTiming] = {}
        for pipeline in self.dag:
            pid = pipeline.pipeline_id
            dop = dops.get(pid)
            if dop is None:
                raise EstimationError(f"no DOP for pipeline {pid}")
            timing = self._timings.get((pid, dop))
            if timing is None:
                timing = self.estimator.pipeline_timing(pipeline, dop, self.overrides)
                self._timings[(pid, dop)] = timing
            timings[pid] = timing
        return self.estimator.estimate_schedule(self.dag, dops, timings)


class _NaiveCoster:
    """Full re-estimation per candidate (the pre-overhaul baseline, kept
    behind ``DopPlanner(incremental=False)`` for A/B benchmarking)."""

    def __init__(
        self,
        estimator: CostEstimator,
        dag: PipelineDag,
        overrides: dict[int, float] | None,
    ) -> None:
        self.estimator = estimator
        self.dag = dag
        self.overrides = overrides
        self.evaluations = 0

    def estimate(self, dops: dict[int, int]) -> CostEstimate:
        self.evaluations += 1
        return self.estimator.estimate_dag(self.dag, dops, self.overrides)


@dataclass
class DopPlan:
    """A DOP assignment plus its predicted cost profile."""

    dops: dict[int, int]
    estimate: CostEstimate
    feasible: bool
    evaluations: int = 0
    constraint: Constraint | None = None

    @property
    def max_dop(self) -> int:
        return max(self.dops.values(), default=0)

    def describe(self) -> str:
        parts = [f"P{pid}:{dop}" for pid, dop in sorted(self.dops.items())]
        status = "feasible" if self.feasible else "INFEASIBLE"
        header = f"DOPs [{', '.join(parts)}] ({status})"
        return f"{header}\n{self.estimate.describe()}"


class DopPlanner:
    """Searches DOP assignments for one pipeline DAG."""

    def __init__(
        self,
        estimator: CostEstimator,
        *,
        max_dop: int = 64,
        enforce_sla_strictly: bool = False,
        incremental: bool = True,
    ) -> None:
        self.estimator = estimator
        self.max_dop = max_dop
        self.enforce_sla_strictly = enforce_sla_strictly
        self.incremental = incremental

    # ------------------------------------------------------------------ #
    # Entry point
    # ------------------------------------------------------------------ #
    def plan(
        self,
        dag: PipelineDag,
        constraint: Constraint,
        overrides: dict[int, float] | None = None,
    ) -> DopPlan:
        coster_cls = _IncrementalCoster if self.incremental else _NaiveCoster
        coster = coster_cls(self.estimator, dag, overrides)
        if constraint.is_sla:
            dops, feasible = self._plan_for_sla(dag, constraint, overrides, coster)
        else:
            dops, feasible = self._plan_for_budget(dag, constraint, overrides, coster)
        estimate = coster.estimate(dops)
        if not feasible and self.enforce_sla_strictly:
            raise InfeasibleConstraintError(
                f"no DOP assignment satisfies {constraint.describe()}",
                best_achievable=constraint.bound_value(estimate),
            )
        return DopPlan(
            dops=dops,
            estimate=estimate,
            feasible=feasible,
            evaluations=coster.evaluations,
            constraint=constraint,
        )

    # ------------------------------------------------------------------ #
    # SLA mode: min dollars s.t. latency <= SLA
    # ------------------------------------------------------------------ #
    def _plan_for_sla(
        self,
        dag: PipelineDag,
        constraint: Constraint,
        overrides: dict[int, float] | None,
        coster: _IncrementalCoster | _NaiveCoster,
    ) -> tuple[dict[int, int], bool]:
        sla = constraint.bound()
        dops = {p.pipeline_id: 1 for p in dag}
        current = coster.estimate(dops)

        # Phase 1: grow until the SLA is met or no move helps.
        while current.latency > sla:
            move = self._best_growth_move(dops, current, coster)
            if move is None:
                break
            dops, current = move
        feasible = current.latency <= sla

        # Phase 2: co-finish polish (never increases latency).
        polished = equalize_siblings(
            dag, dops, self.estimator.models, max_dop=self.max_dop, overrides=overrides
        )
        if polished != dops:
            candidate = coster.estimate(polished)
            if candidate.latency <= max(current.latency, sla):
                dops, current = polished, candidate

        # Phase 3: trim DOPs whose halving keeps the SLA and saves money.
        improved = True
        while improved:
            improved = False
            for pid in sorted(dops):
                if dops[pid] <= 1:
                    continue
                trial = dict(dops)
                trial[pid] = max(1, dops[pid] // 2)
                estimate = coster.estimate(trial)
                if (
                    estimate.total_dollars < current.total_dollars
                    and (estimate.latency <= sla or not feasible)
                ):
                    dops, current = trial, estimate
                    improved = True
        return dops, feasible

    def _best_growth_move(
        self,
        dops: dict[int, int],
        current: CostEstimate,
        coster: _IncrementalCoster | _NaiveCoster,
    ) -> tuple[dict[int, int], CostEstimate] | None:
        """The doubling with the best latency gain per added dollar."""
        best: tuple[float, dict[int, int], CostEstimate] | None = None
        for pid in dops:
            if dops[pid] >= self.max_dop:
                continue
            trial = dict(dops)
            trial[pid] = min(self.max_dop, dops[pid] * 2)
            estimate = coster.estimate(trial)
            gain = current.latency - estimate.latency
            if gain <= 1e-9:
                continue
            extra = max(1e-12, estimate.total_dollars - current.total_dollars)
            score = gain / extra
            if best is None or score > best[0]:
                best = (score, trial, estimate)
        if best is None:
            return None
        return best[1], best[2]

    # ------------------------------------------------------------------ #
    # Budget mode: min latency s.t. dollars <= budget
    # ------------------------------------------------------------------ #
    def _plan_for_budget(
        self,
        dag: PipelineDag,
        constraint: Constraint,
        overrides: dict[int, float] | None,
        coster: _IncrementalCoster | _NaiveCoster,
    ) -> tuple[dict[int, int], bool]:
        budget = constraint.bound()
        dops = {p.pipeline_id: 1 for p in dag}
        current = coster.estimate(dops)
        if current.total_dollars > budget:
            # Even the minimal assignment exceeds the budget.
            return dops, False

        while True:
            best: tuple[float, dict[int, int], CostEstimate] | None = None
            for pid in dops:
                if dops[pid] >= self.max_dop:
                    continue
                trial = dict(dops)
                trial[pid] = min(self.max_dop, dops[pid] * 2)
                estimate = coster.estimate(trial)
                if estimate.total_dollars > budget:
                    continue
                gain = current.latency - estimate.latency
                if gain <= 1e-9:
                    continue
                extra = max(1e-12, estimate.total_dollars - current.total_dollars)
                score = gain / extra
                if best is None or score > best[0]:
                    best = (score, trial, estimate)
            if best is None:
                break
            dops, current = best[1], best[2]

        polished = equalize_siblings(
            dag, dops, self.estimator.models, max_dop=self.max_dop, overrides=overrides
        )
        if polished != dops:
            candidate = coster.estimate(polished)
            if (
                candidate.total_dollars <= budget
                and candidate.latency <= current.latency + 1e-9
            ):
                dops = polished
        return dops, True


def exhaustive_search(
    dag: PipelineDag,
    constraint: Constraint,
    estimator: CostEstimator,
    *,
    dop_choices: tuple[int, ...] = (1, 2, 4, 8, 16, 32, 64),
    overrides: dict[int, float] | None = None,
) -> DopPlan:
    """Brute-force optimum over a DOP grid (tests & heuristic-quality
    experiments only — exponential in the number of pipelines)."""
    pids = [p.pipeline_id for p in dag]
    best: tuple[float, dict[int, int], CostEstimate] | None = None
    evaluations = 0
    for combo in itertools.product(dop_choices, repeat=len(pids)):
        dops = dict(zip(pids, combo))
        estimate = estimator.estimate_dag(dag, dops, overrides)
        evaluations += 1
        if not constraint.satisfied(estimate):
            continue
        objective = constraint.objective(estimate)
        if best is None or objective < best[0]:
            best = (objective, dops, estimate)
    if best is None:
        # Infeasible everywhere: fall back to the bound-minimizing combo.
        for combo in itertools.product(dop_choices, repeat=len(pids)):
            dops = dict(zip(pids, combo))
            estimate = estimator.estimate_dag(dag, dops, overrides)
            evaluations += 1
            value = constraint.bound_value(estimate)
            if best is None or value < best[0]:
                best = (value, dops, estimate)
        assert best is not None
        return DopPlan(
            dops=best[1],
            estimate=best[2],
            feasible=False,
            evaluations=evaluations,
            constraint=constraint,
        )
    return DopPlan(
        dops=best[1],
        estimate=best[2],
        feasible=True,
        evaluations=evaluations,
        constraint=constraint,
    )
