"""Warm server pool: the provider-side pool enabling rapid elasticity.

The paper assumes "the database service provider maintains a warm server
pool to facilitate rapid cluster creation, resizing, and reclamation"
(§3).  Acquiring a node from the warm pool costs a short attach latency;
if the pool is empty a cold start is incurred instead.  Estimating the
warm-pool *size* is explicitly out of the paper's scope — the pool here
has a fixed capacity knob, which experiments leave large enough to stay
warm unless they are specifically stressing cold starts.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compute.node import NodeSpec
from repro.errors import ComputeError


@dataclass(frozen=True)
class WarmPoolConfig:
    """Pool capacity and attach latencies."""

    capacity: int = 1024
    warm_attach_latency_s: float = 1.5
    cold_start_latency_s: float = 35.0
    release_return_latency_s: float = 0.5


class WarmPool:
    """Tracks warm node inventory and answers acquire-latency queries."""

    def __init__(self, spec: NodeSpec, config: WarmPoolConfig | None = None) -> None:
        self.spec = spec
        self.config = config or WarmPoolConfig()
        self._available = self.config.capacity
        self.cold_starts = 0
        self.warm_acquires = 0

    @property
    def available(self) -> int:
        return self._available

    def acquire(self, count: int = 1) -> float:
        """Take ``count`` nodes; returns the provisioning latency (seconds).

        Nodes available in the pool attach with the warm latency; any
        shortfall is satisfied with cold starts (all in parallel, so the
        acquire latency is the max of the two).
        """
        if count <= 0:
            raise ComputeError(f"acquire count must be positive, got {count}")
        from_pool = min(count, self._available)
        cold = count - from_pool
        self._available -= from_pool
        self.warm_acquires += from_pool
        self.cold_starts += cold
        if cold > 0:
            return self.config.cold_start_latency_s
        return self.config.warm_attach_latency_s

    def release(self, count: int = 1) -> float:
        """Return ``count`` nodes to the pool; returns the detach latency."""
        if count <= 0:
            raise ComputeError(f"release count must be positive, got {count}")
        self._available = min(self.config.capacity, self._available + count)
        return self.config.release_return_latency_s
