"""Compute node specifications.

The paper assumes symmetric nodes (§3); hardware selection across instance
families is explicitly out of scope (it defers to Leis & Kuschewski [19]).
We therefore model a default warehouse node plus a couple of alternates so
calibration code and tests can exercise spec-dependent paths.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.units import GB, MB


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one compute node (a VM in the warm pool)."""

    name: str
    cores: int
    memory_bytes: int
    network_bandwidth: float  # bytes/s, full-duplex per direction
    local_disk_bandwidth: float  # bytes/s for spill
    price_per_hour: float

    @property
    def price_per_second(self) -> float:
        return self.price_per_hour / 3600.0

    def __post_init__(self) -> None:
        if self.cores <= 0:
            raise ValueError(f"node {self.name} must have positive cores")
        if self.price_per_hour < 0:
            raise ValueError(f"node {self.name} has negative price")


#: Catalog of node types.  ``standard`` is the symmetric node assumed by the
#: paper's analysis; the others exist for calibration sweeps and tests.
NODE_SPECS: dict[str, NodeSpec] = {
    "standard": NodeSpec(
        name="standard",
        cores=8,
        memory_bytes=64 * GB,
        network_bandwidth=1.25 * GB,  # ~10 Gbps
        local_disk_bandwidth=500 * MB,
        price_per_hour=0.52,
    ),
    "compute-optimized": NodeSpec(
        name="compute-optimized",
        cores=16,
        memory_bytes=32 * GB,
        network_bandwidth=1.25 * GB,
        local_disk_bandwidth=500 * MB,
        price_per_hour=0.68,
    ),
    "memory-optimized": NodeSpec(
        name="memory-optimized",
        cores=8,
        memory_bytes=128 * GB,
        network_bandwidth=1.25 * GB,
        local_disk_bandwidth=500 * MB,
        price_per_hour=0.84,
    ),
}


def node_spec(name: str) -> NodeSpec:
    """Look up a node spec by name."""
    try:
        return NODE_SPECS[name]
    except KeyError:
        known = ", ".join(sorted(NODE_SPECS))
        raise KeyError(f"unknown node spec {name!r}; known: {known}") from None
