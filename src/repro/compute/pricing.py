"""Cloud pricing model and the baseline "T-shirt" size ladder.

``PriceModel`` converts machine time into user-observable cost (UOC) the
way commercial warehouses do: per-node-second rates with a minimum billing
increment per lease (Snowflake bills a 60-second minimum, then per
second).  The T-shirt ladder reproduces the provisioning UI the paper's
Figure 1 criticizes: each size doubles the node count and the unit price.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compute.node import NodeSpec


@dataclass(frozen=True)
class PriceModel:
    """Billing policy applied to node leases.

    ``minimum_billed_seconds`` is charged per node lease even if the node
    is released earlier; afterwards billing is per second.  ``markup``
    scales raw instance prices into the warehouse service's unit price.
    """

    minimum_billed_seconds: float = 60.0
    markup: float = 1.0

    def billed_seconds(self, lease_seconds: float) -> float:
        if lease_seconds < 0:
            raise ValueError(f"negative lease duration: {lease_seconds}")
        return max(lease_seconds, self.minimum_billed_seconds)

    def lease_dollars(self, spec: NodeSpec, lease_seconds: float) -> float:
        return self.billed_seconds(lease_seconds) * spec.price_per_second * self.markup

    def machine_time_dollars(self, spec: NodeSpec, machine_seconds: float) -> float:
        """Cost of raw machine time without the per-lease minimum.

        Used by the analytic cost estimator, which reasons in machine
        seconds; the simulator's billing meter applies lease minimums.
        """
        if machine_seconds < 0:
            raise ValueError(f"negative machine time: {machine_seconds}")
        return machine_seconds * spec.price_per_second * self.markup


#: Snowflake-style warehouse size ladder: name -> node count.
TSHIRT_SIZES: dict[str, int] = {
    "XS": 1,
    "S": 2,
    "M": 4,
    "L": 8,
    "XL": 16,
    "2XL": 32,
    "3XL": 64,
    "4XL": 128,
}


def tshirt_for_nodes(nodes: int) -> str:
    """Smallest T-shirt size with at least ``nodes`` nodes (clamped to 4XL)."""
    for name, count in TSHIRT_SIZES.items():
        if count >= nodes:
            return name
    return "4XL"
