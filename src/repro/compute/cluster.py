"""Virtual warehouse: an elastic set of leased nodes with billing.

A :class:`VirtualWarehouse` is the user-visible cluster abstraction — the
thing the T-shirt UI in the paper's Figure 1 sizes up front, and the thing
our DOP monitor resizes at pipeline granularity instead.  It combines the
warm pool (acquire/release latency) with the billing meter (cost), and
exposes ``resize`` as the primitive both static planning and dynamic
resizing use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compute.billing import BillingMeter, CostBreakdown
from repro.compute.node import NodeSpec
from repro.compute.pricing import PriceModel
from repro.compute.warmpool import WarmPool
from repro.errors import ComputeError


@dataclass
class NodeLease:
    """A live node in the warehouse, mapping node slots to billing leases."""

    lease_id: int
    acquired_at: float


class VirtualWarehouse:
    """An elastic cluster of symmetric nodes with per-second billing.

    All time values are simulation timestamps supplied by the caller (the
    distributed simulator or a test); the warehouse itself holds no clock.
    """

    def __init__(
        self,
        spec: NodeSpec,
        *,
        pool: WarmPool | None = None,
        price_model: PriceModel | None = None,
        label: str = "wh",
    ) -> None:
        self.spec = spec
        self.pool = pool or WarmPool(spec)
        self.meter = BillingMeter(price_model or PriceModel())
        self.label = label
        self._nodes: list[NodeLease] = []
        self.resize_count = 0

    # ------------------------------------------------------------------ #
    # Sizing
    # ------------------------------------------------------------------ #
    @property
    def size(self) -> int:
        return len(self._nodes)

    def scale_to(self, target: int, now: float) -> float:
        """Resize to ``target`` nodes; returns the resize latency in seconds.

        Scaling up pays the warm-pool acquire latency; scaling down pays
        the release latency.  A no-op resize returns 0.
        """
        if target < 0:
            raise ComputeError(f"cannot scale to negative size {target}")
        delta = target - self.size
        if delta == 0:
            return 0.0
        self.resize_count += 1
        if delta > 0:
            latency = self.pool.acquire(delta)
            for _ in range(delta):
                lease_id = self.meter.open_lease(self.spec, now, label=self.label)
                self._nodes.append(NodeLease(lease_id=lease_id, acquired_at=now))
            return latency
        # Scale down: release the most recently acquired nodes (LIFO keeps
        # long-lived nodes alive, minimizing lease minimum-billing waste).
        release_count = -delta
        latency = self.pool.release(release_count)
        for _ in range(release_count):
            lease = self._nodes.pop()
            self.meter.close_lease(lease.lease_id, now)
        return latency

    def release_all(self, now: float) -> None:
        if self._nodes:
            self.scale_to(0, now)

    # ------------------------------------------------------------------ #
    # Billing
    # ------------------------------------------------------------------ #
    def cost(self, *, now: float | None = None) -> CostBreakdown:
        """Current cost breakdown; open leases priced up to ``now``."""
        return self.meter.breakdown(now=now)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"VirtualWarehouse({self.label}, size={self.size}, spec={self.spec.name})"
