"""Billing meter: turns node leases into an auditable cost breakdown.

The meter records every lease interval (node id, spec, start, end) as the
simulation runs and reports user-observable cost (UOC) with the paper's
semantics: a node is billed for its entire lease, including time spent
blocked waiting for upstream pipelines (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compute.node import NodeSpec
from repro.compute.pricing import PriceModel
from repro.errors import ComputeError


@dataclass
class LeaseRecord:
    """One node's lease interval; ``end`` is None while the lease is open."""

    node_id: int
    spec: NodeSpec
    start: float
    end: float | None = None
    label: str = ""

    @property
    def duration(self) -> float:
        if self.end is None:
            raise ComputeError(f"lease for node {self.node_id} still open")
        return self.end - self.start


@dataclass
class CostBreakdown:
    """Aggregated cost report for a query or a workload window."""

    compute_dollars: float = 0.0
    storage_dollars: float = 0.0
    request_dollars: float = 0.0
    machine_seconds: float = 0.0
    billed_machine_seconds: float = 0.0
    num_leases: int = 0

    @property
    def total_dollars(self) -> float:
        return self.compute_dollars + self.storage_dollars + self.request_dollars

    def add(self, other: "CostBreakdown") -> None:
        self.compute_dollars += other.compute_dollars
        self.storage_dollars += other.storage_dollars
        self.request_dollars += other.request_dollars
        self.machine_seconds += other.machine_seconds
        self.billed_machine_seconds += other.billed_machine_seconds
        self.num_leases += other.num_leases


class BillingMeter:
    """Tracks open/closed leases and prices them with a :class:`PriceModel`."""

    def __init__(self, price_model: PriceModel | None = None) -> None:
        self.price_model = price_model or PriceModel()
        self._open: dict[int, LeaseRecord] = {}
        self._closed: list[LeaseRecord] = []
        self._next_id = 0

    def open_lease(self, spec: NodeSpec, now: float, label: str = "") -> int:
        """Start billing a node; returns the lease id."""
        if now < 0:
            raise ComputeError(f"negative lease start time {now}")
        lease_id = self._next_id
        self._next_id += 1
        self._open[lease_id] = LeaseRecord(
            node_id=lease_id, spec=spec, start=now, label=label
        )
        return lease_id

    def close_lease(self, lease_id: int, now: float) -> None:
        record = self._open.pop(lease_id, None)
        if record is None:
            raise ComputeError(f"no open lease with id {lease_id}")
        if now < record.start:
            raise ComputeError(
                f"lease {lease_id} closed at {now} before start {record.start}"
            )
        record.end = now
        self._closed.append(record)

    def close_all(self, now: float) -> None:
        for lease_id in list(self._open):
            self.close_lease(lease_id, now)

    @property
    def open_lease_count(self) -> int:
        return len(self._open)

    @property
    def leases(self) -> list[LeaseRecord]:
        return list(self._closed)

    def breakdown(self, *, now: float | None = None) -> CostBreakdown:
        """Price all leases; open leases are priced up to ``now`` if given."""
        report = CostBreakdown()
        records = list(self._closed)
        if now is not None:
            records.extend(
                LeaseRecord(r.node_id, r.spec, r.start, now, r.label)
                for r in self._open.values()
            )
        elif self._open:
            raise ComputeError(
                f"{len(self._open)} leases still open; pass now= to price them"
            )
        for record in records:
            duration = record.duration
            report.machine_seconds += duration
            report.billed_machine_seconds += self.price_model.billed_seconds(duration)
            report.compute_dollars += self.price_model.lease_dollars(
                record.spec, duration
            )
            report.num_leases += 1
        return report
