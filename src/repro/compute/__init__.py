"""Elastic compute layer: nodes, pricing, warm pool, clusters, billing.

Models the paper's assumptions (§3): symmetric stateless compute nodes
acquired on demand, a provider-maintained warm pool for rapid cluster
creation/resizing/reclamation, and billing proportional to *total machine
time* (blocked nodes are still billed).
"""

from repro.compute.node import NodeSpec, NODE_SPECS
from repro.compute.pricing import PriceModel, TSHIRT_SIZES
from repro.compute.billing import BillingMeter, CostBreakdown
from repro.compute.warmpool import WarmPool
from repro.compute.cluster import VirtualWarehouse, NodeLease

__all__ = [
    "NodeSpec",
    "NODE_SPECS",
    "PriceModel",
    "TSHIRT_SIZES",
    "BillingMeter",
    "CostBreakdown",
    "WarmPool",
    "VirtualWarehouse",
    "NodeLease",
]
