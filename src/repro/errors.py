"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CatalogError(ReproError):
    """Schema or metadata problem (unknown table/column, duplicate name...)."""


class StorageError(ReproError):
    """Object-store or micro-partition level failure."""


class ComputeError(ReproError):
    """Elastic-compute layer failure (pool exhausted, invalid resize...)."""


class SqlError(ReproError):
    """SQL front-end failure. Carries an optional source position."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class ParseError(SqlError):
    """Raised by the lexer/parser on malformed SQL text."""


class BindError(SqlError):
    """Raised by the binder when names cannot be resolved."""


class PlanError(ReproError):
    """Invalid logical/physical plan construction or transformation."""


class OptimizerError(ReproError):
    """Optimizer failure (no feasible plan, search error...)."""


class EstimationError(ReproError):
    """Cost-estimation failure (missing calibration, invalid input...)."""


class InfeasibleConstraintError(OptimizerError):
    """No plan satisfies the user's latency SLA or budget constraint.

    The optimizer attaches the best achievable value so callers can report
    "tightest achievable" to the user, mirroring the paper's goal of making
    trade-offs explicit.
    """

    def __init__(self, message: str, best_achievable: float | None = None) -> None:
        super().__init__(message)
        self.best_achievable = best_achievable


class ExecutionError(ReproError):
    """Local engine or distributed-simulation failure at run time."""


class QueryFailedError(ReproError):
    """One submission failed inside the serving layer.

    Carries enough context to identify the failing item in a batch —
    its position, a prefix of its SQL, and the underlying cause — so a
    ``submit_many`` over hundreds of queries reports *which* one broke
    instead of a bare subsystem error.
    """

    def __init__(
        self,
        message: str,
        *,
        index: int | None = None,
        sql: str | None = None,
        cause: BaseException | None = None,
    ) -> None:
        prefix = None
        if sql is not None:
            prefix = sql if len(sql) <= 80 else sql[:77] + "..."
        where = "query" if index is None else f"query #{index}"
        detail = f"{where} failed: {message}" if message else f"{where} failed"
        if prefix is not None:
            detail = f"{detail} [sql: {prefix}]"
        super().__init__(detail)
        self.index = index
        self.sql = sql
        self.sql_prefix = prefix
        self.cause = cause
        if cause is not None:
            self.__cause__ = cause


class AdmissionDeniedError(QueryFailedError):
    """Admission control refused a submission: the tenant's dollar
    budget is exhausted.

    Raised (well — carried on the :class:`~repro.core.service.QueryHandle`,
    whose terminal state becomes ``DENIED``) when a tenant's
    :class:`~repro.core.service.TenantBill` total spend (serving plus
    background tuning) has reached its configured
    :class:`~repro.core.governance.TenantBudget`.  Subclasses
    :class:`QueryFailedError` so batch error reporting
    (``fail_fast=False`` per-handle carrying, index + SQL prefix) works
    unchanged; carries the tenant and the dollar figures so callers can
    show *whose* budget blocked *what*.
    """

    def __init__(
        self,
        message: str,
        *,
        tenant: str,
        spent_dollars: float | None = None,
        budget_dollars: float | None = None,
        index: int | None = None,
        sql: str | None = None,
    ) -> None:
        super().__init__(message, index=index, sql=sql)
        self.tenant = tenant
        self.spent_dollars = spent_dollars
        self.budget_dollars = budget_dollars


class TuningError(ReproError):
    """Auto-tuning / what-if service failure."""


class TuningStateError(TuningError):
    """Invalid :class:`~repro.tuning.service.Recommendation` lifecycle
    transition (e.g. applying a rejected recommendation, or rolling back
    one that was never applied).  Carries the states so callers can show
    the user what the recommendation would have needed to be in."""

    def __init__(self, message: str, *, state: str | None = None) -> None:
        super().__init__(message)
        self.state = state


class WorkloadError(ReproError):
    """Workload generation failure (bad scale factor, unknown template...)."""
