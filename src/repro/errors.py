"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to distinguish subsystems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class TransientError(ReproError):
    """A failure that may succeed on retry (dependency blip, injected
    fault, ...).  The resilience layer's :class:`~repro.core.resilience.
    RetryPolicy` retries *only* subclasses of this marker: deterministic
    user errors (:class:`BindError`, :class:`ParseError`, an infeasible
    constraint) re-fail identically on every attempt and propagate
    immediately instead of burning retry dollars."""


def _restore_error(cls: type, detail: str, state: dict) -> Exception:
    """Rebuild a repro error from its pickled state.

    Errors with required keyword-only constructor arguments (e.g.
    :class:`AdmissionDeniedError`'s ``tenant``) cannot use the default
    ``cls(*args)`` exception reconstruction; this bypasses ``__init__``
    and restores the already-formatted message plus the attribute dict.
    """
    error = cls.__new__(cls)
    Exception.__init__(error, detail)
    error.__dict__.update(state)
    return error


class CatalogError(ReproError):
    """Schema or metadata problem (unknown table/column, duplicate name...)."""


class StorageError(ReproError):
    """Object-store or micro-partition level failure."""


class ComputeError(ReproError):
    """Elastic-compute layer failure (pool exhausted, invalid resize...)."""


class SqlError(ReproError):
    """SQL front-end failure. Carries an optional source position."""

    def __init__(self, message: str, position: int | None = None) -> None:
        if position is not None:
            message = f"{message} (at offset {position})"
        super().__init__(message)
        self.position = position


class ParseError(SqlError):
    """Raised by the lexer/parser on malformed SQL text."""


class BindError(SqlError):
    """Raised by the binder when names cannot be resolved."""


class PlanError(ReproError):
    """Invalid logical/physical plan construction or transformation."""


class OptimizerError(ReproError):
    """Optimizer failure (no feasible plan, search error...)."""


class EstimationError(ReproError):
    """Cost-estimation failure (missing calibration, invalid input...)."""


class InfeasibleConstraintError(OptimizerError):
    """No plan satisfies the user's latency SLA or budget constraint.

    The optimizer attaches the best achievable value so callers can report
    "tightest achievable" to the user, mirroring the paper's goal of making
    trade-offs explicit.
    """

    def __init__(self, message: str, best_achievable: float | None = None) -> None:
        super().__init__(message)
        self.best_achievable = best_achievable


class ExecutionError(ReproError):
    """Local engine or distributed-simulation failure at run time."""


class DeadlineExceededError(ReproError):
    """A serving stage (or the whole request) ran past its deadline.

    Carries the stage that tripped and the configured/elapsed seconds.
    An ``optimize`` deadline is special-cased by the serving layer: it
    falls back to degraded-mode planning instead of failing the query.
    """

    def __init__(
        self,
        message: str,
        *,
        stage: str | None = None,
        deadline_s: float | None = None,
        elapsed_s: float | None = None,
    ) -> None:
        super().__init__(message)
        self.stage = stage
        self.deadline_s = deadline_s
        self.elapsed_s = elapsed_s


class RetryExhaustedError(ReproError):
    """A transient failure persisted through every allowed retry attempt.

    Terminal (deliberately *not* a :class:`TransientError`: the budget
    of attempts is spent).  Carries the stage, the attempt count, and a
    picklable summary of the last underlying failure.
    """

    def __init__(
        self,
        message: str,
        *,
        stage: str | None = None,
        attempts: int | None = None,
        cause_type: str | None = None,
        cause_message: str | None = None,
    ) -> None:
        super().__init__(message)
        self.stage = stage
        self.attempts = attempts
        self.cause_type = cause_type
        self.cause_message = cause_message


class QueryFailedError(ReproError):
    """One submission failed inside the serving layer.

    Carries enough context to identify the failing item in a batch —
    its position, a prefix of its SQL, and the underlying cause — so a
    ``submit_many`` over hundreds of queries reports *which* one broke
    instead of a bare subsystem error.

    The cause chain is carried in picklable form (``cause_type`` /
    ``cause_message`` strings plus the failing ``stage``) so handles can
    cross process boundaries; :attr:`cause` additionally keeps the live
    exception object in-process for the legacy ``submit()`` re-raise
    contract, but is dropped on pickling.
    """

    def __init__(
        self,
        message: str,
        *,
        index: int | None = None,
        sql: str | None = None,
        cause: BaseException | None = None,
        stage: str | None = None,
    ) -> None:
        prefix = None
        if sql is not None:
            prefix = sql if len(sql) <= 80 else sql[:77] + "..."
        where = "query" if index is None else f"query #{index}"
        detail = f"{where} failed: {message}" if message else f"{where} failed"
        if prefix is not None:
            detail = f"{detail} [sql: {prefix}]"
        super().__init__(detail)
        self.index = index
        self.sql = sql
        self.sql_prefix = prefix
        self.stage = stage
        self.cause = cause
        self.cause_type = type(cause).__name__ if cause is not None else None
        self.cause_message = str(cause) if cause is not None else None
        if cause is not None:
            self.__cause__ = cause

    def __reduce__(self):
        # The live cause may hold an unpicklable traceback/lock graph
        # (and AdmissionDeniedError has required keyword arguments the
        # default ``cls(*args)`` reconstruction cannot supply); pickle
        # the formatted message and the attribute dict minus the live
        # exception object.
        state = {k: v for k, v in self.__dict__.items() if k != "cause"}
        state["cause"] = None
        detail = self.args[0] if self.args else ""
        return (_restore_error, (type(self), detail, state))


class AdmissionDeniedError(QueryFailedError):
    """Admission control refused a submission: the tenant's dollar
    budget is exhausted.

    Raised (well — carried on the :class:`~repro.core.service.QueryHandle`,
    whose terminal state becomes ``DENIED``) when a tenant's
    :class:`~repro.core.service.TenantBill` total spend (serving plus
    background tuning) has reached its configured
    :class:`~repro.core.governance.TenantBudget`.  Subclasses
    :class:`QueryFailedError` so batch error reporting
    (``fail_fast=False`` per-handle carrying, index + SQL prefix) works
    unchanged; carries the tenant and the dollar figures so callers can
    show *whose* budget blocked *what*.
    """

    def __init__(
        self,
        message: str,
        *,
        tenant: str,
        spent_dollars: float | None = None,
        budget_dollars: float | None = None,
        index: int | None = None,
        sql: str | None = None,
    ) -> None:
        super().__init__(message, index=index, sql=sql)
        self.tenant = tenant
        self.spent_dollars = spent_dollars
        self.budget_dollars = budget_dollars


class DurabilityError(ReproError):
    """Base class for write-ahead journal / crash-recovery failures."""


class JournalError(DurabilityError):
    """The write-ahead journal rejected an operation (unknown record
    type, appending to a closed journal, a corrupt serialized file)."""


class RecoveryError(DurabilityError):
    """Crash recovery could not restore a consistent warehouse (replay
    onto a non-fresh warehouse, a journal/catalog mismatch, an in-doubt
    recommendation whose undo snapshot is unusable)."""


class TuningError(ReproError):
    """Auto-tuning / what-if service failure."""


class TuningStateError(TuningError):
    """Invalid :class:`~repro.tuning.service.Recommendation` lifecycle
    transition (e.g. applying a rejected recommendation, or rolling back
    one that was never applied).  Carries the states so callers can show
    the user what the recommendation would have needed to be in."""

    def __init__(self, message: str, *, state: str | None = None) -> None:
        super().__init__(message)
        self.state = state


class WorkloadError(ReproError):
    """Workload generation failure (bad scale factor, unknown template...)."""
