"""Exposition: render the registry and the cost history for machines.

Two formats, both pure functions over collected samples:

- :func:`prometheus_text` — the Prometheus text exposition format
  (``# HELP`` / ``# TYPE`` preambles, ``name{label="v"} value`` lines,
  histogram ``_bucket``/``_sum``/``_count`` expansion).  Sourced views
  are typed ``gauge``; ledger-unit counters are emitted as exact
  integers.
- :func:`registry_json` / :func:`history_json` — plain-data dicts
  (``json.dumps``-ready) for programmatic consumers; the history form
  nests tenant slices with their drill-down leaves.

``warehouse.observe()`` is the unified entry point that feeds both.
"""

from __future__ import annotations

from repro.obsvc.history import CostHistoryStore
from repro.obsvc.metrics import MetricsRegistry, Sample

__all__ = [
    "history_json",
    "prometheus_text",
    "registry_json",
]


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_str(labels: tuple[tuple[str, str], ...]) -> str:
    if not labels:
        return ""
    inner = ",".join(f'{name}="{_escape(value)}"' for name, value in labels)
    return "{" + inner + "}"


def _fmt_bound(bound: float) -> str:
    return "+Inf" if bound == float("inf") else repr(bound)


def _scalar_lines(sample: Sample) -> list[str]:
    return [f"{sample.name}{_label_str(sample.labels)} {sample.value}"]


def _histogram_lines(sample: Sample) -> list[str]:
    lines = []
    snap = sample.value
    for bound, count in snap["buckets"]:
        labels = sample.labels + (("le", _fmt_bound(bound)),)
        lines.append(f"{sample.name}_bucket{_label_str(labels)} {count}")
    lines.append(f"{sample.name}_sum{_label_str(sample.labels)} {snap['sum']}")
    lines.append(
        f"{sample.name}_count{_label_str(sample.labels)} {snap['count']}"
    )
    return lines


#: Registry kind -> Prometheus TYPE.
_PROM_TYPES = {
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
    "source": "gauge",
}


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render every live sample in the Prometheus text format."""
    lines: list[str] = []
    seen_preamble: set[str] = set()
    for sample in registry.collect():
        if sample.name not in seen_preamble:
            seen_preamble.add(sample.name)
            lines.append(f"# HELP {sample.name} {sample.help}")
            lines.append(f"# TYPE {sample.name} {_PROM_TYPES[sample.kind]}")
        if sample.kind == "histogram":
            lines.extend(_histogram_lines(sample))
        else:
            lines.extend(_scalar_lines(sample))
    return "\n".join(lines) + ("\n" if lines else "")


def registry_json(registry: MetricsRegistry) -> dict:
    """Plain-data image of the registry, keyed by metric name."""
    metrics: dict[str, dict] = {}
    for sample in registry.collect():
        entry = metrics.setdefault(
            sample.name,
            {"kind": sample.kind, "help": sample.help, "samples": []},
        )
        value = sample.value
        if sample.kind == "histogram":
            value = {
                "buckets": [
                    [_fmt_bound(bound), count]
                    for bound, count in value["buckets"]
                ],
                "sum": value["sum"],
                "count": value["count"],
            }
        entry["samples"].append({"labels": dict(sample.labels), "value": value})
    return metrics


def history_json(store: CostHistoryStore) -> dict:
    """Plain-data image of the collected cost history."""
    snapshots = []
    for snapshot in store.snapshots():
        snapshots.append(
            {
                "seq": snapshot.seq,
                "clock": snapshot.clock,
                "log_len": snapshot.log_len,
                "tenants": [
                    {
                        "tenant": entry.tenant,
                        "queries": entry.queries,
                        "machine_seconds": entry.machine_seconds,
                        "serving_units": entry.serving_units,
                        "background_units": entry.background_units,
                        "retry_units": entry.retry_units,
                        "total_units": entry.total_units,
                        "total_dollars": entry.total_dollars,
                        "leaves": [
                            {
                                "template": leaf.template,
                                "pipeline": leaf.pipeline,
                                "operator": leaf.operator,
                                "units": leaf.units,
                            }
                            for leaf in entry.leaves
                        ],
                    }
                    for entry in snapshot.tenants
                ],
            }
        )
    return {"snapshots": snapshots, "tenants": list(store.tenants())}
