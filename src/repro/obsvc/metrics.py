"""Typed metrics registry: the single declaration point for every
metric the warehouse emits.

Two kinds of instruments live here:

- **Owned** counters / gauges / histograms, incremented by the serving
  path at event time (a query finalizing, an admission denial, a cost
  snapshot landing).  All dollar-valued owned metrics accumulate in
  integral :data:`~repro.util.units.LEDGER_SCALE` units — never float
  dollars — so identical seeded runs produce bit-identical values.
- **Sourced** read-through views over subsystems that already keep
  authoritative, recovery-participating state (cache stripes,
  admission verdicts, resilience stats, breakers, tuning, the
  journal).  A source is one callable per metric *name* returning a
  scalar (label-less metrics) or a ``{label-values-tuple: value}``
  mapping; nothing is double-counted and the hot cache paths keep
  their existing lock-striped integer stats.

Every emission must name a metric declared in
:data:`REGISTERED_METRICS` — the analysis engine's ``metric-name``
rule enforces this statically (mirroring ``journal-site``), and the
registry enforces it at runtime by raising :class:`MetricNameError`.
``reset()`` zeroes only owned instruments; sourced views follow their
underlying subsystem's own reset (``warehouse.reset_cache_stats``
calls both).  The registry lock is always innermost (acquired under
the serving lock, never the reverse), keeping the lock-order
sanitizer's graph acyclic.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

from repro.errors import ReproError

__all__ = [
    "LATENCY_BUCKETS",
    "REGISTERED_METRICS",
    "MetricNameError",
    "MetricSpec",
    "MetricsRegistry",
    "Sample",
]


class MetricNameError(ReproError):
    """A metric was emitted under a name absent from the registry."""


#: Histogram bucket upper bounds (seconds) for modeled query latency.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


@dataclass(frozen=True)
class MetricSpec:
    """Declaration of one metric: kind, help text, and label names."""

    kind: str  # "counter" | "gauge" | "histogram" | "source"
    help: str
    labels: tuple[str, ...] = ()
    buckets: tuple[float, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.kind not in ("counter", "gauge", "histogram", "source"):
            raise MetricNameError(f"unknown metric kind {self.kind!r}")
        if self.kind == "histogram" and not self.buckets:
            raise MetricNameError("histogram metrics must declare buckets")


#: The canonical metric catalogue.  Adding a metric means adding a row
#: here — the ``metric-name`` lint rule rejects any emission whose
#: name is not a key of this dict (or is not a string literal).
REGISTERED_METRICS: dict[str, MetricSpec] = {
    # -- serving events (owned; incremented by Session._finalize etc.) --
    "repro_queries_served_total": MetricSpec(
        "counter", "Queries served to completion, by tenant.", ("tenant",)
    ),
    "repro_queries_failed_total": MetricSpec(
        "counter", "Queries that failed during serving, by tenant.", ("tenant",)
    ),
    "repro_queries_denied_total": MetricSpec(
        "counter", "Queries refused by admission control, by tenant.", ("tenant",)
    ),
    "repro_query_latency_seconds": MetricSpec(
        "histogram",
        "Modeled end-to-end query latency (virtual seconds).",
        ("tenant",),
        buckets=LATENCY_BUCKETS,
    ),
    "repro_serving_cost_ledger_units": MetricSpec(
        "counter",
        "Serving spend metered at finalize time, in integral ledger units.",
        ("tenant",),
    ),
    "repro_cost_snapshots_total": MetricSpec(
        "counter", "Cost snapshots appended to the history store."
    ),
    # -- billing (sourced from TenantBill ledgers) ----------------------
    "repro_tenant_cost_ledger_units": MetricSpec(
        "source",
        "Authoritative per-tenant spend in ledger units, by component "
        "(serving / background / retry).",
        ("tenant", "component"),
    ),
    # -- plan caches (sourced from the lock-striped cache stats) --------
    "repro_cache_entries": MetricSpec(
        "source", "Live entries per plan-cache level.", ("cache",)
    ),
    "repro_cache_capacity": MetricSpec(
        "source", "Configured capacity per plan-cache level.", ("cache",)
    ),
    "repro_cache_hits_total": MetricSpec(
        "source", "Cache hits per plan-cache level.", ("cache",)
    ),
    "repro_cache_misses_total": MetricSpec(
        "source", "Cache misses per plan-cache level.", ("cache",)
    ),
    "repro_cache_evictions_total": MetricSpec(
        "source", "Capacity evictions per plan-cache level.", ("cache",)
    ),
    "repro_cache_policy_evictions_total": MetricSpec(
        "source", "Retention-policy evictions per plan-cache level.", ("cache",)
    ),
    "repro_timing_cache_hits_total": MetricSpec(
        "source", "Estimator memo hits (timing / volume).", ("kind",)
    ),
    "repro_timing_cache_computations_total": MetricSpec(
        "source", "Estimator memo computations (timing / volume).", ("kind",)
    ),
    # -- admission (sourced from AdmissionController) -------------------
    "repro_admission_verdicts_total": MetricSpec(
        "source", "Admission verdicts by tenant and verdict.", ("tenant", "verdict")
    ),
    # -- resilience (sourced from ResilienceStats / breakers) -----------
    "repro_retries_total": MetricSpec(
        "source", "Transient-failure retries across all serving stages."
    ),
    "repro_retry_cost_ledger_units": MetricSpec(
        "source", "Retry spend in integral ledger units."
    ),
    "repro_deadline_hits_total": MetricSpec(
        "source", "Per-request or per-stage deadline expirations."
    ),
    "repro_degraded_queries_total": MetricSpec(
        "source", "Queries served via the degraded-mode plan path."
    ),
    "repro_breaker_state": MetricSpec(
        "source",
        "Circuit-breaker state (0=closed, 1=half_open, 2=open).",
        ("breaker",),
    ),
    "repro_breaker_opens_total": MetricSpec(
        "source", "Times each circuit breaker has opened.", ("breaker",)
    ),
    "repro_breaker_consecutive_failures": MetricSpec(
        "source", "Current consecutive-failure count per breaker.", ("breaker",)
    ),
    # -- tuning (sourced from TuningService, 0 until materialized) ------
    "repro_tuning_cycles_total": MetricSpec(
        "source", "Background tuning cycles run this process."
    ),
    "repro_tuning_consecutive_failures": MetricSpec(
        "source", "Consecutive swallowed tuning-cycle failures."
    ),
    "repro_background_cost_ledger_units": MetricSpec(
        "source",
        "Background tuning spend billed per tenant, in ledger units.",
        ("tenant",),
    ),
    "repro_tuning_estimated_savings_ledger_units_per_hour": MetricSpec(
        "source",
        "Estimated net savings rate of currently applied recommendations, "
        "in ledger units per hour.",
    ),
    # -- journal / durability (sourced from the WAL) --------------------
    "repro_journal_records_total": MetricSpec(
        "source", "Entries in the write-ahead journal (0 when detached)."
    ),
    "repro_journal_records_since_checkpoint": MetricSpec(
        "source", "Journal entries appended since the last checkpoint."
    ),
    "repro_journal_last_checkpoint_id": MetricSpec(
        "source", "Id of the most recent inline checkpoint (0 when none)."
    ),
    # -- serving state (sourced from the warehouse) ---------------------
    "repro_virtual_clock_seconds": MetricSpec(
        "source", "The warehouse's virtual serving clock."
    ),
    "repro_queries_logged_total": MetricSpec(
        "source", "Records in the statistics-service query log."
    ),
    # -- process-sharded serving (sourced from PlannerWorkerPool, 0 /
    #    empty until enable_sharding; IPC histogram owned) --------------
    "repro_worker_pool_size": MetricSpec(
        "source", "Planner worker processes in the active pool."
    ),
    "repro_worker_restarts_total": MetricSpec(
        "source", "Planner workers restarted warm after a crash or hang."
    ),
    "repro_worker_restaged_tasks_total": MetricSpec(
        "source", "In-flight tasks re-sent to a restarted planner worker."
    ),
    "repro_worker_warm_task_hits_total": MetricSpec(
        "source",
        "Tasks served from a worker's warm private cache, by level "
        "(bind / skeleton).",
        ("level",),
    ),
    "repro_worker_ipc_roundtrip_seconds": MetricSpec(
        "histogram",
        "Wall time from task send to result receipt (queue wait included).",
        buckets=(0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25,
                 0.5, 1.0, 2.5, 5.0),
    ),
}


@dataclass(frozen=True)
class Sample:
    """One collected metric value.

    ``labels`` is a sorted tuple of ``(name, value)`` pairs; ``value``
    is a number for scalar kinds and, for histograms, a dict with
    ``buckets`` (cumulative ``(le, count)`` pairs), ``sum`` and
    ``count``.
    """

    name: str
    kind: str
    labels: tuple[tuple[str, str], ...]
    value: object
    help: str


class _Histogram:
    """Fixed-bucket histogram; observation order is deterministic
    because every observe happens under the serving lock."""

    __slots__ = ("buckets", "counts", "total", "count")

    def __init__(self, buckets: tuple[float, ...]) -> None:
        self.buckets = buckets
        self.counts = [0] * (len(buckets) + 1)  # +1 for +Inf
        self.total = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1

    def snapshot(self) -> dict:
        cumulative = []
        running = 0
        for bound, count in zip(self.buckets, self.counts):
            running += count
            cumulative.append((bound, running))
        cumulative.append((float("inf"), self.count))
        return {
            "buckets": tuple(cumulative),
            "sum": self.total,
            "count": self.count,
        }


class MetricsRegistry:
    """Owned instruments + sourced views behind one declared namespace.

    All mutation happens under a single internal lock (always acquired
    via ``with``, always innermost relative to the serving lock).
    ``collect()`` returns a deterministically ordered sample list; the
    exporters in :mod:`repro.obsvc.export` render it.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[tuple[str, tuple[str, ...]], int] = {}
        self._gauges: dict[tuple[str, tuple[str, ...]], float] = {}
        self._histograms: dict[tuple[str, tuple[str, ...]], _Histogram] = {}
        self._sources: dict[str, object] = {}  # name -> provider callable

    # -- declaration enforcement ---------------------------------------- #
    @staticmethod
    def _spec(name: str, kind: str) -> MetricSpec:
        spec = REGISTERED_METRICS.get(name)
        if spec is None:
            raise MetricNameError(
                f"metric {name!r} is not declared in REGISTERED_METRICS"
            )
        if spec.kind != kind:
            raise MetricNameError(
                f"metric {name!r} is declared as {spec.kind!r}, emitted as {kind!r}"
            )
        return spec

    @staticmethod
    def _label_values(spec: MetricSpec, name: str, labels: dict) -> tuple[str, ...]:
        if set(labels) != set(spec.labels):
            raise MetricNameError(
                f"metric {name!r} expects labels {spec.labels!r}, "
                f"got {tuple(sorted(labels))!r}"
            )
        return tuple(str(labels[key]) for key in spec.labels)

    # -- owned instruments ---------------------------------------------- #
    def counter(self, name: str, amount: int = 1, **labels: str) -> None:
        """Increment an owned counter (integral amounts only)."""
        spec = self._spec(name, "counter")
        values = self._label_values(spec, name, labels)
        if not isinstance(amount, int) or amount < 0:
            raise MetricNameError(
                f"counter {name!r} takes a non-negative int, got {amount!r}"
            )
        with self._lock:
            key = (name, values)
            self._counters[key] = self._counters.get(key, 0) + amount

    def gauge(self, name: str, value: float, **labels: str) -> None:
        """Set an owned gauge to an absolute value."""
        spec = self._spec(name, "gauge")
        values = self._label_values(spec, name, labels)
        with self._lock:
            self._gauges[(name, values)] = value

    def histogram(self, name: str, value: float, **labels: str) -> None:
        """Observe one value into an owned fixed-bucket histogram."""
        spec = self._spec(name, "histogram")
        values = self._label_values(spec, name, labels)
        with self._lock:
            key = (name, values)
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = _Histogram(spec.buckets)
            hist.observe(value)

    # -- sourced views --------------------------------------------------- #
    def source(self, name: str, provider) -> None:
        """Register the read-through provider for a sourced metric.

        ``provider`` takes no arguments and returns a number (when the
        spec has no labels) or a ``{label-values-tuple: number}``
        mapping (one entry per live label combination).
        """
        self._spec(name, "source")
        with self._lock:
            self._sources[name] = provider

    # -- reads ----------------------------------------------------------- #
    def value(self, name: str, **labels: str):
        """Current value of one metric (0 when never emitted)."""
        spec = REGISTERED_METRICS.get(name)
        if spec is None:
            raise MetricNameError(
                f"metric {name!r} is not declared in REGISTERED_METRICS"
            )
        values = self._label_values(spec, name, labels)
        if spec.kind == "counter":
            with self._lock:
                return self._counters.get((name, values), 0)
        if spec.kind == "gauge":
            with self._lock:
                return self._gauges.get((name, values), 0.0)
        if spec.kind == "histogram":
            with self._lock:
                hist = self._histograms.get((name, values))
                return hist.snapshot() if hist is not None else None
        with self._lock:
            provider = self._sources.get(name)
        if provider is None:
            return 0
        produced = provider()
        if spec.labels:
            return produced.get(values, 0)
        return produced

    def sourced(self, name: str) -> dict:
        """Full ``{label-values-tuple: value}`` mapping of one source."""
        spec = self._spec(name, "source")
        with self._lock:
            provider = self._sources.get(name)
        if provider is None:
            return {}
        produced = provider()
        if not spec.labels:
            return {(): produced}
        return dict(produced)

    def collect(self) -> list[Sample]:
        """Every live sample, deterministically ordered by name/labels."""
        samples: list[Sample] = []
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = {
                key: hist.snapshot() for key, hist in self._histograms.items()
            }
            sources = dict(self._sources)
        for (name, values), count in counters.items():
            samples.append(self._sample(name, values, count))
        for (name, values), value in gauges.items():
            samples.append(self._sample(name, values, value))
        for (name, values), snap in histograms.items():
            samples.append(self._sample(name, values, snap))
        for name, provider in sources.items():
            spec = REGISTERED_METRICS[name]
            produced = provider()
            if not spec.labels:
                samples.append(self._sample(name, (), produced))
                continue
            for values, value in produced.items():
                samples.append(self._sample(name, tuple(values), value))
        samples.sort(key=lambda s: (s.name, s.labels))
        return samples

    @staticmethod
    def _sample(name: str, values: tuple[str, ...], value) -> Sample:
        spec = REGISTERED_METRICS[name]
        return Sample(
            name=name,
            kind=spec.kind,
            labels=tuple(zip(spec.labels, values)),
            value=value,
            help=spec.help,
        )

    # -- lifecycle -------------------------------------------------------- #
    def reset(self) -> None:
        """Zero every owned instrument; sourced views are untouched
        (their owners reset their own state)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
