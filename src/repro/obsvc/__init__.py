"""Fleet-scale cost observability for the cost-intelligent warehouse.

The paper frames cloud cost reduction as a continuous
measure-decide-act loop; this package is the **measure** leg.  Four
pieces, layered strictly below :mod:`repro.core` (nothing here imports
core at module scope, so the serving stack can import the registry
without cycles):

- :mod:`repro.obsvc.metrics` — the typed **metrics registry**.  Every
  metric the warehouse emits is declared once in
  :data:`~repro.obsvc.metrics.REGISTERED_METRICS`; emissions against
  undeclared names fail at runtime (``MetricNameError``) *and* at lint
  time (the ``metric-name`` analysis rule).  Owned counters /
  gauges / histograms capture serving events; **sourced** read-through
  views expose the subsystems that already keep authoritative state
  (the three plan-cache levels, admission verdicts, resilience stats,
  breakers, tuning, the journal) without double-counting.  All dollar
  metrics are integral :data:`~repro.util.units.LEDGER_SCALE` units.
  ``warehouse.describe_health()`` / ``describe_caches()`` are
  read-only views over this registry.

- :mod:`repro.obsvc.collector` + :mod:`repro.obsvc.history` —
  **scheduled collection** into a **queryable cost history**.  A
  :class:`~repro.obsvc.collector.CollectionPolicy` (cadence by queries
  or *virtual* seconds, mirroring ``TuningPolicy``) drives
  :class:`~repro.obsvc.collector.SnapshotCollector` from the serving
  layer; each snapshot journals a write-ahead ``CostSnapshotTaken``
  record before appending to the picklable
  :class:`~repro.obsvc.history.CostHistoryStore`, which also rides in
  every checkpoint — so the history is crash-consistent and, under a
  fixed seed, bitwise reproducible.

- :mod:`repro.obsvc.drilldown` — the **drill-down navigator**: spend
  decomposed tenant → template family → pipeline → operator, each
  level an exact integral partition of the one above (the warehouse
  apportions every served query's ledger units across its plan's
  operators by largest remainder, so leaves reconcile bitwise against
  :class:`~repro.core.service.TenantBill`).

- :mod:`repro.obsvc.export` — **exposition**: Prometheus text format
  and plain-JSON renderings of the registry and the history, unified
  behind ``warehouse.observe()``.

Invariants inherited from the serving core: virtual time only, seeded
randomness only, dollars as integral ledger units, locks held via
``with`` (the registry/history locks are innermost; the lock-order
sanitizer covers them), and every journal append site registered in
``REGISTERED_JOURNAL_SITES``.
"""

from repro.obsvc.collector import (
    CollectionError,
    CollectionPolicy,
    SnapshotCollector,
)
from repro.obsvc.drilldown import DrillDownNavigator, ReconciliationError
from repro.obsvc.export import history_json, prometheus_text, registry_json
from repro.obsvc.history import (
    CostHistoryStore,
    CostLeaf,
    CostSnapshot,
    TenantCostSlice,
)
from repro.obsvc.metrics import (
    LATENCY_BUCKETS,
    REGISTERED_METRICS,
    MetricNameError,
    MetricSpec,
    MetricsRegistry,
    Sample,
)

__all__ = [
    "CollectionError",
    "CollectionPolicy",
    "SnapshotCollector",
    "DrillDownNavigator",
    "ReconciliationError",
    "history_json",
    "prometheus_text",
    "registry_json",
    "CostHistoryStore",
    "CostLeaf",
    "CostSnapshot",
    "TenantCostSlice",
    "LATENCY_BUCKETS",
    "REGISTERED_METRICS",
    "MetricNameError",
    "MetricSpec",
    "MetricsRegistry",
    "Sample",
]
