"""Virtual-time scheduled cost collection.

:class:`SnapshotCollector` is to the cost history what
:class:`~repro.tuning.service.TuningService` is to auto-tuning: the
serving layer pings ``warehouse._maybe_collect()`` after every
submit/batch, and a snapshot is taken when the configured
:class:`CollectionPolicy` cadence has elapsed — counted in **queries**
(log length, an O(1) check) or **virtual seconds** (the warehouse
clock; never wall time, so identical seeded runs collect at identical
instants and the history is bitwise reproducible).

Collection is crash-consistent by the same write-ahead discipline as
serving: under the serving lock the collector folds the newly logged
records' per-operator cost leaves into its cumulative drill-down
aggregation, builds one :class:`~repro.obsvc.history.TenantCostSlice`
per billed tenant (ledger units copied from the authoritative
:class:`~repro.core.service.TenantBill`), journals a
``CostSnapshotTaken`` record **before** appending to the in-memory
:class:`~repro.obsvc.history.CostHistoryStore`.  A crash between the
two is healed on replay; cadence watermarks re-prime from the restored
history so a recovered warehouse resumes the schedule deterministically.

The collector is configured post-construction
(``warehouse.enable_collection(...)``) — the warehouse constructor
surface stays frozen per the ``warehouse-kwargs`` contract.
"""

from __future__ import annotations

import bisect
import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ReproError
from repro.obsvc.history import (
    BACKGROUND_LEAF,
    RETRY_LEAF,
    CostLeaf,
    CostSnapshot,
    TenantCostSlice,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.warehouse import CostIntelligentWarehouse

__all__ = [
    "CollectionError",
    "CollectionPolicy",
    "SnapshotCollector",
]


class CollectionError(ReproError):
    """Invalid collection configuration."""


@dataclass(frozen=True)
class CollectionPolicy:
    """When the serving layer should snapshot the fleet's spend.

    Mirrors :class:`~repro.tuning.service.TuningPolicy`'s cadence
    contract: a snapshot is due when either ``cadence_queries`` new
    log records have landed or ``cadence_seconds`` of *virtual* time
    has passed since the last snapshot.
    """

    cadence_queries: "int | None" = None
    cadence_seconds: "float | None" = None

    def __post_init__(self) -> None:
        if self.cadence_queries is not None and self.cadence_queries < 1:
            raise CollectionError(
                f"cadence_queries must be >= 1, got {self.cadence_queries}"
            )
        if self.cadence_seconds is not None and self.cadence_seconds <= 0:
            raise CollectionError(
                f"cadence_seconds must be positive, got {self.cadence_seconds}"
            )

    @property
    def recurring(self) -> bool:
        return self.cadence_queries is not None or self.cadence_seconds is not None


class SnapshotCollector:
    """Folds logged cost leaves and appends scheduled snapshots."""

    def __init__(self, warehouse: "CostIntelligentWarehouse") -> None:
        self.warehouse = warehouse
        self.policy: "CollectionPolicy | None" = None
        self._lock = threading.Lock()
        #: Index into the query log up to which leaves are folded.
        self._folded = 0
        #: tenant -> (template, pipeline, operator) -> ledger units.
        self._cumulative: dict[str, dict[tuple[str, str, str], int]] = {}
        #: Snapshot-build caches: a :class:`CostLeaf` is rebuilt only
        #: when its units change, and keys keep sorted order
        #: incrementally — so a snapshot reuses unchanged leaf objects
        #: instead of re-sorting and re-materializing the whole
        #: cumulative aggregation every cadence tick.
        self._leaf_cache: dict[str, dict[tuple[str, str, str], CostLeaf]] = {}
        self._sorted_keys: dict[str, list[tuple[str, str, str]]] = {}
        #: Cadence watermarks (primed lazily from restored history).
        self._last_log_len = 0
        self._last_clock: "float | None" = None
        self._primed = False

    # -- configuration --------------------------------------------------- #
    def configure(self, policy: "CollectionPolicy | None") -> None:
        """Install (or clear, with ``None``) the collection schedule."""
        with self._lock:
            self.policy = policy

    @property
    def enabled(self) -> bool:
        policy = self.policy
        return policy is not None and policy.recurring

    # -- scheduling ------------------------------------------------------- #
    def maybe_collect(self) -> "CostSnapshot | None":
        """Take a snapshot if the cadence has elapsed (serving calls
        this after every submit/batch)."""
        policy = self.policy
        if policy is None or not policy.recurring:
            return None
        warehouse = self.warehouse
        with warehouse._serving_lock:
            self._prime_locked()
            due = False
            if policy.cadence_queries is not None:
                due = (
                    len(warehouse.logs) - self._last_log_len
                    >= policy.cadence_queries
                )
            if not due and policy.cadence_seconds is not None:
                due = (
                    self._last_clock is None
                    or warehouse.clock - self._last_clock
                    >= policy.cadence_seconds
                )
            if not due:
                return None
            return self._collect_locked()

    def collect_now(self) -> CostSnapshot:
        """Take one snapshot immediately, cadence notwithstanding."""
        with self.warehouse._serving_lock:
            self._prime_locked()
            return self._collect_locked()

    def _prime_locked(self) -> None:
        """Resume the schedule from restored history after recovery."""
        if self._primed:
            return
        self._primed = True
        latest = self.warehouse.cost_history.latest()
        if latest is not None:
            self._last_log_len = latest.log_len
            self._last_clock = latest.clock

    # -- snapshotting ----------------------------------------------------- #
    def _collect_locked(self) -> CostSnapshot:
        warehouse = self.warehouse
        self._fold_locked()
        slices = tuple(
            self._slice_for(tenant, bill)
            for tenant, bill in sorted(warehouse.billing.items())
        )
        snapshot = CostSnapshot(
            seq=warehouse.cost_history.next_seq(),
            clock=warehouse.clock,
            log_len=len(warehouse.logs),
            tenants=slices,
        )
        self._append_snapshot(snapshot)
        self._last_log_len = snapshot.log_len
        self._last_clock = snapshot.clock
        warehouse.metrics.counter("repro_cost_snapshots_total")
        return snapshot

    def _append_snapshot(self, snapshot: CostSnapshot) -> None:
        # Write-ahead: the journal record lands (and the crash probes
        # fire) before the in-memory history mutates; replay re-appends
        # idempotently by seq.  Registered in REGISTERED_JOURNAL_SITES.
        # _journal_append (probes included) is a no-op without a
        # journal, so the O(leaves) row materialization is skipped too.
        if self.warehouse.journal is not None:
            from repro.core.journal import CostSnapshotTaken

            self.warehouse._journal_append(
                CostSnapshotTaken(
                    seq=snapshot.seq,
                    clock=snapshot.clock,
                    log_len=snapshot.log_len,
                    tenants=tuple(
                        entry.as_row() for entry in snapshot.tenants
                    ),
                )
            )
        self.warehouse.cost_history.append(snapshot)

    def _fold_locked(self) -> None:
        """Fold newly logged records' cost leaves into the cumulative
        per-tenant drill-down aggregation (resumable from any index:
        records carry their own apportioned leaves)."""
        records = self.warehouse.logs.since(self._folded)
        self._folded += len(records)
        for record in records:
            tenant = record.tenant
            by_key = self._cumulative.setdefault(tenant, {})
            cache = self._leaf_cache.setdefault(tenant, {})
            ordered = self._sorted_keys.setdefault(tenant, [])
            for pipeline, operator, units in record.cost_breakdown:
                key = (record.template or "(adhoc)", pipeline, operator)
                prior = by_key.get(key)
                if prior is None:
                    bisect.insort(ordered, key)
                    total = units
                else:
                    total = prior + units
                by_key[key] = total
                cache[key] = CostLeaf(key[0], key[1], key[2], total)

    def _slice_for(self, tenant: str, bill) -> TenantCostSlice:
        cache = self._leaf_cache.get(tenant, {})
        leaves = [cache[key] for key in self._sorted_keys.get(tenant, ())]
        if bill.retry_units:
            leaves.append(
                CostLeaf(RETRY_LEAF, RETRY_LEAF, RETRY_LEAF, bill.retry_units)
            )
        if bill.background_units:
            leaves.append(
                CostLeaf(
                    BACKGROUND_LEAF,
                    BACKGROUND_LEAF,
                    BACKGROUND_LEAF,
                    bill.background_units,
                )
            )
        return TenantCostSlice(
            tenant=tenant,
            queries=bill.queries,
            machine_seconds=bill.machine_seconds,
            serving_units=bill.serving_units,
            background_units=bill.background_units,
            background_actions=bill.background_actions,
            retry_units=bill.retry_units,
            retries=bill.retries,
            leaves=tuple(leaves),
        )
