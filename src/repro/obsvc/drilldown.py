"""Tenant → template family → pipeline → operator spend decomposition.

The navigator is a pure view over one
:class:`~repro.obsvc.history.CostSnapshot`: every level is an exact
integral partition of the level above (ledger units, never floats), so
``sum(operators) == sum(pipelines) == sum(templates) == tenant total``
holds **bitwise** — :meth:`DrillDownNavigator.reconcile` asserts it
and the 20-seed chaos matrix drives it with faults injected.

Shape borrowed from the FinOps drill-down dashboards cited in the
paper's related work: start at the fleet, follow the biggest number
down four levels, end at the one operator to optimize.
"""

from __future__ import annotations

from repro.errors import ReproError
from repro.obsvc.history import CostSnapshot, TenantCostSlice
from repro.util.units import fmt_dollars, from_ledger_units

__all__ = [
    "DrillDownNavigator",
    "ReconciliationError",
]


class ReconciliationError(ReproError):
    """Drill-down leaves did not sum exactly to the tenant's bill."""


def _ranked(totals: dict[str, int]) -> tuple[tuple[str, int], ...]:
    """Deterministic spend ranking: units descending, name ascending."""
    return tuple(
        sorted(totals.items(), key=lambda item: (-item[1], item[0]))
    )


class DrillDownNavigator:
    """Read-only spend navigation over one collected snapshot."""

    def __init__(self, snapshot: CostSnapshot) -> None:
        self.snapshot = snapshot

    # -- levels ----------------------------------------------------------- #
    def tenants(self) -> tuple[tuple[str, int], ...]:
        """``(tenant, total ledger units)`` ranked by spend."""
        return _ranked(
            {entry.tenant: entry.total_units for entry in self.snapshot.tenants}
        )

    def templates(self, tenant: str) -> tuple[tuple[str, int], ...]:
        totals: dict[str, int] = {}
        for leaf in self._slice(tenant).leaves:
            totals[leaf.template] = totals.get(leaf.template, 0) + leaf.units
        return _ranked(totals)

    def pipelines(self, tenant: str, template: str) -> tuple[tuple[str, int], ...]:
        totals: dict[str, int] = {}
        for leaf in self._slice(tenant).leaves:
            if leaf.template == template:
                totals[leaf.pipeline] = totals.get(leaf.pipeline, 0) + leaf.units
        return _ranked(totals)

    def operators(
        self, tenant: str, template: str, pipeline: str
    ) -> tuple[tuple[str, int], ...]:
        totals: dict[str, int] = {}
        for leaf in self._slice(tenant).leaves:
            if leaf.template == template and leaf.pipeline == pipeline:
                totals[leaf.operator] = totals.get(leaf.operator, 0) + leaf.units
        return _ranked(totals)

    # -- navigation -------------------------------------------------------- #
    def costliest_path(self, tenant: "str | None" = None) -> tuple:
        """Follow the biggest spend down all four levels.

        Returns ``(tenant, template, pipeline, operator, units)`` for
        the top-spending tenant (or the given one).
        """
        if tenant is None:
            ranked = self.tenants()
            if not ranked:
                raise ReconciliationError("snapshot has no tenants")
            tenant = ranked[0][0]
        templates = self.templates(tenant)
        if not templates:
            return (tenant, "", "", "", 0)
        template = templates[0][0]
        pipeline = self.pipelines(tenant, template)[0][0]
        operator, units = self.operators(tenant, template, pipeline)[0]
        return (tenant, template, pipeline, operator, units)

    # -- reconciliation ----------------------------------------------------- #
    def reconcile(self, tenant: "str | None" = None) -> dict:
        """Assert the exact-partition invariant; raise on any stray unit.

        For each (or the given) tenant: the operator-level leaves sum
        bitwise to the slice's :class:`~repro.core.service.TenantBill`
        ledger-unit total, and every intermediate level re-partitions
        exactly.  Returns ``{tenant: total units}`` on success.
        """
        tenants = (
            [tenant] if tenant is not None
            else [entry.tenant for entry in self.snapshot.tenants]
        )
        totals: dict[str, int] = {}
        for name in tenants:
            entry = self._slice(name)
            leaf_units = entry.leaf_units
            if leaf_units != entry.total_units:
                raise ReconciliationError(
                    f"tenant {name!r}: leaves sum to {leaf_units} ledger "
                    f"units but the bill says {entry.total_units}"
                )
            template_units = sum(u for _, u in self.templates(name))
            if template_units != entry.total_units:
                raise ReconciliationError(
                    f"tenant {name!r}: template level lost units "
                    f"({template_units} != {entry.total_units})"
                )
            totals[name] = entry.total_units
        return totals

    # -- rendering ----------------------------------------------------------- #
    def describe(self, tenant: "str | None" = None, top: int = 3) -> str:
        """Human-readable drill-down tree (top-N per level)."""
        lines = [
            f"snapshot #{self.snapshot.seq} @ t={self.snapshot.clock:.2f}s "
            f"({self.snapshot.log_len} queries logged)"
        ]
        tenant_rows = (
            [(tenant, self._slice(tenant).total_units)]
            if tenant is not None
            else list(self.tenants()[:top])
        )
        for name, units in tenant_rows:
            lines.append(f"  {name}: {fmt_dollars(from_ledger_units(units))}")
            for template, t_units in self.templates(name)[:top]:
                lines.append(
                    f"    {template}: {fmt_dollars(from_ledger_units(t_units))}"
                )
                for pipeline, p_units in self.pipelines(name, template)[:top]:
                    lines.append(
                        f"      {pipeline}: "
                        f"{fmt_dollars(from_ledger_units(p_units))}"
                    )
                    for operator, o_units in self.operators(
                        name, template, pipeline
                    )[:top]:
                        lines.append(
                            f"        {operator}: "
                            f"{fmt_dollars(from_ledger_units(o_units))}"
                        )
        return "\n".join(lines)

    # -- internals ------------------------------------------------------------ #
    def _slice(self, tenant: str) -> TenantCostSlice:
        entry = self.snapshot.slice_for(tenant)
        if entry is None:
            raise ReconciliationError(
                f"tenant {tenant!r} is not in snapshot #{self.snapshot.seq}"
            )
        return entry
