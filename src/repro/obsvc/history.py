"""Queryable, picklable time series of per-tenant cost snapshots.

A :class:`CostSnapshot` is one scheduled observation of the fleet's
spend: the virtual clock, the log length, and one
:class:`TenantCostSlice` per billed tenant.  Each slice carries the
tenant's authoritative ledger-unit totals (serving / background /
retry, copied bit-for-bit from :class:`~repro.core.service.TenantBill`)
plus the **drill-down leaves**: ``(template, pipeline, operator)``
triples whose integral ledger units sum *exactly* to the slice total —
the per-record largest-remainder apportionment in the warehouse
guarantees there is never a stray unit.

The :class:`CostHistoryStore` participates in crash consistency the
same way the query log does: every snapshot is journaled write-ahead
(``CostSnapshotTaken``) before the in-memory append, the whole store
rides inside ``CheckpointState``, and replay re-appends idempotently
by sequence number.  All row shapes are plain tuples of plain data so
both the journal record and the checkpoint state stay picklable.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from repro.util.units import from_ledger_units

__all__ = [
    "CostHistoryStore",
    "CostLeaf",
    "CostSnapshot",
    "TenantCostSlice",
]

#: Synthetic leaf labels closing the reconciliation over non-serving
#: spend components (these have no pipeline/operator decomposition).
RETRY_LEAF = "(retries)"
BACKGROUND_LEAF = "(background)"


@dataclass(frozen=True)
class CostLeaf:
    """One drill-down leaf: integral ledger units attributed to an
    operator of a pipeline of a template family."""

    template: str
    pipeline: str
    operator: str
    units: int

    @property
    def dollars(self) -> float:
        return from_ledger_units(self.units)

    def as_row(self) -> tuple:
        return (self.template, self.pipeline, self.operator, self.units)

    @classmethod
    def from_row(cls, row: tuple) -> "CostLeaf":
        template, pipeline, operator, units = row
        return cls(template, pipeline, operator, units)


@dataclass(frozen=True)
class TenantCostSlice:
    """One tenant's position in one snapshot, in ledger units."""

    tenant: str
    queries: int
    machine_seconds: float
    serving_units: int
    background_units: int
    background_actions: int
    retry_units: int
    retries: int
    leaves: tuple[CostLeaf, ...]

    @property
    def total_units(self) -> int:
        return self.serving_units + self.background_units + self.retry_units

    @property
    def total_dollars(self) -> float:
        return from_ledger_units(self.total_units)

    @property
    def leaf_units(self) -> int:
        """Sum of all drill-down leaves — bitwise equal to
        :attr:`total_units` by construction (asserted by the chaos
        reconciliation matrix)."""
        return sum(leaf.units for leaf in self.leaves)

    def as_row(self) -> tuple:
        return (
            self.tenant,
            self.queries,
            self.machine_seconds,
            self.serving_units,
            self.background_units,
            self.background_actions,
            self.retry_units,
            self.retries,
            tuple(leaf.as_row() for leaf in self.leaves),
        )

    @classmethod
    def from_row(cls, row: tuple) -> "TenantCostSlice":
        (
            tenant,
            queries,
            machine_seconds,
            serving_units,
            background_units,
            background_actions,
            retry_units,
            retries,
            leaf_rows,
        ) = row
        return cls(
            tenant=tenant,
            queries=queries,
            machine_seconds=machine_seconds,
            serving_units=serving_units,
            background_units=background_units,
            background_actions=background_actions,
            retry_units=retry_units,
            retries=retries,
            leaves=tuple(CostLeaf.from_row(r) for r in leaf_rows),
        )


@dataclass(frozen=True)
class CostSnapshot:
    """One scheduled observation: virtual time + per-tenant slices."""

    seq: int
    clock: float
    log_len: int
    tenants: tuple[TenantCostSlice, ...]

    def slice_for(self, tenant: str) -> "TenantCostSlice | None":
        for entry in self.tenants:
            if entry.tenant == tenant:
                return entry
        return None

    @property
    def total_units(self) -> int:
        return sum(entry.total_units for entry in self.tenants)

    def as_row(self) -> tuple:
        return (
            self.seq,
            self.clock,
            self.log_len,
            tuple(entry.as_row() for entry in self.tenants),
        )

    @classmethod
    def from_row(cls, row: tuple) -> "CostSnapshot":
        seq, clock, log_len, tenant_rows = row
        return cls(
            seq=seq,
            clock=clock,
            log_len=log_len,
            tenants=tuple(TenantCostSlice.from_row(r) for r in tenant_rows),
        )


class CostHistoryStore:
    """Append-only, seq-ordered store of collected cost snapshots.

    Appends are idempotent by ``seq`` (journal replay may revisit a
    record the checkpoint already restored); reads return immutable
    snapshots.  ``as_state()`` / ``restore_state()`` round-trip the
    store through ``CheckpointState`` as plain tuples.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._snapshots: list[CostSnapshot] = []

    def __len__(self) -> int:
        with self._lock:
            return len(self._snapshots)

    def __iter__(self):
        return iter(self.snapshots())

    # -- writes ----------------------------------------------------------- #
    def append(self, snapshot: CostSnapshot) -> bool:
        """Append one snapshot; ``False`` when ``seq`` was already seen."""
        with self._lock:
            if self._snapshots and snapshot.seq <= self._snapshots[-1].seq:
                return False
            self._snapshots.append(snapshot)
            return True

    def apply_record(self, record) -> bool:
        """Idempotently append a replayed ``CostSnapshotTaken`` record."""
        return self.append(
            CostSnapshot(
                seq=record.seq,
                clock=record.clock,
                log_len=record.log_len,
                tenants=tuple(
                    TenantCostSlice.from_row(row) for row in record.tenants
                ),
            )
        )

    # -- reads ------------------------------------------------------------ #
    def snapshots(self, tenant: "str | None" = None) -> tuple[CostSnapshot, ...]:
        with self._lock:
            entries = tuple(self._snapshots)
        if tenant is None:
            return entries
        return tuple(s for s in entries if s.slice_for(tenant) is not None)

    def latest(self) -> "CostSnapshot | None":
        with self._lock:
            return self._snapshots[-1] if self._snapshots else None

    def next_seq(self) -> int:
        with self._lock:
            return self._snapshots[-1].seq + 1 if self._snapshots else 1

    def series(self, tenant: str) -> tuple[tuple[float, int], ...]:
        """``(clock, total ledger units)`` series for one tenant."""
        points = []
        for snapshot in self.snapshots():
            entry = snapshot.slice_for(tenant)
            if entry is not None:
                points.append((snapshot.clock, entry.total_units))
        return tuple(points)

    def tenants(self) -> tuple[str, ...]:
        seen: dict[str, None] = {}
        for snapshot in self.snapshots():
            for entry in snapshot.tenants:
                seen.setdefault(entry.tenant, None)
        return tuple(sorted(seen))

    # -- checkpoint round-trip -------------------------------------------- #
    def as_state(self) -> tuple:
        """Plain-tuple image of the store for ``CheckpointState``."""
        return tuple(s.as_row() for s in self.snapshots())

    def restore_state(self, state: tuple) -> None:
        with self._lock:
            self._snapshots = [CostSnapshot.from_row(row) for row in state]

    # -- pickling (the lock is process-local) ------------------------------ #
    def __getstate__(self) -> dict:
        return {"snapshots": self.as_state()}

    def __setstate__(self, state: dict) -> None:
        self._lock = threading.Lock()
        self._snapshots = [
            CostSnapshot.from_row(row) for row in state["snapshots"]
        ]
