"""Engine of the repo lint: module model, rule registry, suppressions,
baseline, and the path walker.

The engine is deliberately small and dependency-free (stdlib ``ast``
only).  It knows nothing about the repo's invariants — those live in
:mod:`repro.analysis.rules` — it only provides the machinery:

- :class:`ModuleSource` — one parsed file: source, AST with a parent
  map (for enclosing-scope qualnames), normalized repo-relative path,
  package classification, and the per-line suppression table;
- :class:`Rule` + :func:`register` — the rule registry.  A rule is a
  class with a ``rule_id``, a ``description``, an ``applies_to(module)``
  scope predicate, and a ``check(module)`` generator of findings;
- :class:`Finding` — one violation, with a line-number-independent
  ``fingerprint`` (hash of rule + path + stripped source line) so
  baseline entries survive unrelated edits above them;
- :class:`Baseline` — the grandfathered-findings file.  Every entry
  must carry a non-empty justification; matching findings are reported
  separately and do not fail ``--strict``;
- :func:`check_module` / :func:`analyze_paths` — run the registry over
  one module or a path tree and fold in suppressions and the baseline.

Suppressions are per line: ``# lint-allow: <rule-id> <justification>``
on the offending line.  A justification is mandatory — a
``lint-allow`` comment naming only the rule does not suppress and
instead raises a ``suppression-format`` finding, so silent opt-outs
cannot accrete.
"""

from __future__ import annotations

import ast
import hashlib
import json
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "ModuleSource",
    "Report",
    "Rule",
    "RULES",
    "analyze_paths",
    "check_module",
    "dotted_name",
    "iter_python_files",
    "module_from_source",
    "normalize_path",
    "register",
]

_SUPPRESS_RE = re.compile(
    r"#\s*lint-allow:\s*(?P<rule>[a-z0-9-]+)(?:[ \t]+(?P<reason>\S.*))?"
)


def normalize_path(path: "Path | str") -> str:
    """Stable repo-relative posix path for fingerprints and registries.

    ``/anything/src/repro/core/x.py`` -> ``repro/core/x.py`` and
    ``/anything/tests/core/test_x.py`` -> ``tests/core/test_x.py``, so
    fingerprints and the journal-site registry do not depend on the
    checkout location or the CLI's working directory.
    """
    parts = Path(path).as_posix().split("/")
    for anchor in ("repro", "tests"):
        if anchor in parts:
            return "/".join(parts[len(parts) - 1 - parts[::-1].index(anchor) :])
    return Path(path).as_posix()


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, else ``None``.

    Chains hanging off calls or subscripts (``f().x``) are not simple
    names and return ``None`` — rules that key on receivers only care
    about directly named objects.
    """
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base is not None else None
    return None


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source line."""

    rule: str
    path: str  # normalized (see normalize_path)
    line: int
    message: str
    line_text: str = ""

    @property
    def fingerprint(self) -> str:
        """Line-number-independent identity used by the baseline."""
        payload = f"{self.rule}\0{self.path}\0{self.line_text.strip()}"
        return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]

    def to_json(self) -> dict:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "fingerprint": self.fingerprint,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


class ModuleSource:
    """A parsed module plus the classification the rules key on."""

    def __init__(self, path: "Path | str", source: str) -> None:
        self.path = Path(path)
        self.norm = normalize_path(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=str(path))
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        # line -> {rule_id: justification}; None justification means the
        # comment was malformed (missing reason) and must not suppress.
        self.suppressions: dict[int, dict[str, str | None]] = {}
        for lineno, text in enumerate(self.lines, start=1):
            match = _SUPPRESS_RE.search(text)
            if match:
                self.suppressions.setdefault(lineno, {})[
                    match.group("rule")
                ] = match.group("reason")

    # -- path classification ------------------------------------------ #
    @property
    def subpackage(self) -> str:
        """``core`` for ``repro/core/x.py``; ``""`` for top-level/other."""
        parts = self.norm.split("/")
        if parts[0] == "repro" and len(parts) > 2:
            return parts[1]
        return ""

    @property
    def in_repro(self) -> bool:
        return self.norm.split("/")[0] == "repro"

    @property
    def is_testing(self) -> bool:
        return self.subpackage == "testing"

    @property
    def is_tests(self) -> bool:
        return self.norm.split("/")[0] == "tests"

    # -- AST helpers --------------------------------------------------- #
    def enclosing_qualname(self, node: ast.AST) -> str:
        """Dotted class/function scope containing *node* (``<module>``
        at top level), e.g. ``CostIntelligentWarehouse._charge_retry``."""
        names: list[str] = []
        current = self._parents.get(node)
        while current is not None:
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
            ):
                names.append(current.name)
            current = self._parents.get(current)
        return ".".join(reversed(names)) or "<module>"

    def line_text(self, lineno: int) -> str:
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""

    def suppression_for(self, rule_id: str, lineno: int) -> str | None:
        """The justification if *lineno* carries a valid suppression."""
        return (self.suppressions.get(lineno) or {}).get(rule_id)


def module_from_source(source: str, path: "Path | str") -> ModuleSource:
    """Build a :class:`ModuleSource` without touching the filesystem
    (fixture corpora pass fake paths like ``src/repro/core/x.py``)."""
    return ModuleSource(path, source)


# --------------------------------------------------------------------- #
# Rule registry
# --------------------------------------------------------------------- #
class Rule:
    """Base class: subclass, set ``rule_id``/``description``, implement
    ``check``, and decorate with :func:`register`."""

    rule_id: str = ""
    description: str = ""

    def applies_to(self, module: ModuleSource) -> bool:
        return True

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, module: ModuleSource, node: "ast.AST | int", message: str
    ) -> Finding:
        lineno = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(
            rule=self.rule_id,
            path=module.norm,
            line=lineno,
            message=message,
            line_text=module.line_text(lineno),
        )


RULES: dict[str, Rule] = {}


def register(cls: type) -> type:
    """Class decorator adding one instance of *cls* to the registry."""
    rule = cls()
    if not rule.rule_id:
        raise ValueError(f"{cls.__name__} has no rule_id")
    if rule.rule_id in RULES:
        raise ValueError(f"duplicate rule id {rule.rule_id!r}")
    RULES[rule.rule_id] = rule
    return cls


# --------------------------------------------------------------------- #
# Baseline
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    fingerprint: str
    justification: str

    def matches(self, finding: Finding) -> bool:
        return (
            self.rule == finding.rule
            and self.path == finding.path
            and self.fingerprint == finding.fingerprint
        )


class Baseline:
    """Grandfathered findings, each with a mandatory justification."""

    VERSION = 1

    def __init__(self, entries: Iterable[BaselineEntry] = ()) -> None:
        self.entries: list[BaselineEntry] = list(entries)

    @classmethod
    def load(cls, path: "Path | str") -> "Baseline":
        path = Path(path)
        if not path.exists():
            return cls()
        payload = json.loads(path.read_text(encoding="utf-8"))
        if payload.get("version") != cls.VERSION:
            raise ValueError(
                f"unsupported baseline version {payload.get('version')!r} "
                f"in {path}"
            )
        entries = []
        for raw in payload.get("findings", []):
            justification = str(raw.get("justification", "")).strip()
            if not justification:
                raise ValueError(
                    f"baseline entry {raw.get('rule')}:{raw.get('path')} in "
                    f"{path} has no justification; every grandfathered "
                    "finding must say why it is kept"
                )
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    fingerprint=str(raw["fingerprint"]),
                    justification=justification,
                )
            )
        return cls(entries)

    def save(self, path: "Path | str") -> None:
        payload = {
            "version": self.VERSION,
            "findings": [
                {
                    "rule": e.rule,
                    "path": e.path,
                    "fingerprint": e.fingerprint,
                    "justification": e.justification,
                }
                for e in self.entries
            ],
        }
        Path(path).write_text(
            json.dumps(payload, indent=2) + "\n", encoding="utf-8"
        )

    def match(self, finding: Finding) -> BaselineEntry | None:
        for entry in self.entries:
            if entry.matches(finding):
                return entry
        return None


# --------------------------------------------------------------------- #
# Running
# --------------------------------------------------------------------- #
@dataclass
class Report:
    """Outcome of one analysis run."""

    findings: list[Finding]  # active: not suppressed, not baselined
    suppressed: list[tuple[Finding, str]]  # (finding, justification)
    baselined: list[tuple[Finding, BaselineEntry]]
    stale_baseline: list[BaselineEntry]  # entries that matched nothing
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings

    def to_json(self) -> dict:
        return {
            "files_checked": self.files_checked,
            "findings": [f.to_json() for f in self.findings],
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
            "stale_baseline": [
                {"rule": e.rule, "path": e.path, "fingerprint": e.fingerprint}
                for e in self.stale_baseline
            ],
        }


def check_module(
    module: ModuleSource, rules: "Iterable[Rule] | None" = None
) -> tuple[list[Finding], list[tuple[Finding, str]]]:
    """Run the registry over one module.

    Returns ``(active, suppressed)``; the baseline is applied by the
    caller (:func:`analyze_paths`) because it is a repo-level artifact.
    Malformed suppression comments (no justification) surface as
    ``suppression-format`` findings, which cannot themselves be
    suppressed.
    """
    active: list[Finding] = []
    suppressed: list[tuple[Finding, str]] = []
    for rule in rules if rules is not None else RULES.values():
        if not rule.applies_to(module):
            continue
        for finding in rule.check(module):
            justification = module.suppression_for(finding.rule, finding.line)
            if justification:
                suppressed.append((finding, justification))
            else:
                active.append(finding)
    for lineno, per_rule in sorted(module.suppressions.items()):
        for rule_id, reason in sorted(per_rule.items()):
            if reason is None:
                active.append(
                    Finding(
                        rule="suppression-format",
                        path=module.norm,
                        line=lineno,
                        message=(
                            f"lint-allow for {rule_id!r} has no "
                            "justification; write '# lint-allow: "
                            f"{rule_id} <why>'"
                        ),
                        line_text=module.line_text(lineno),
                    )
                )
    active.sort(key=lambda f: (f.path, f.line, f.rule))
    return active, suppressed


def iter_python_files(paths: Iterable["Path | str"]) -> list[Path]:
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        elif not path.exists():
            raise FileNotFoundError(f"no such file or directory: {path}")
    seen: set[Path] = set()
    unique = []
    for f in files:
        resolved = f.resolve()
        if resolved not in seen:
            seen.add(resolved)
            unique.append(f)
    return unique


def analyze_paths(
    paths: Iterable["Path | str"],
    baseline: "Baseline | None" = None,
    rules: "Iterable[Rule] | None" = None,
) -> Report:
    """Run the registry over every ``*.py`` under *paths* and fold in
    the baseline.  A file that fails to parse becomes a ``parse-error``
    finding rather than aborting the run."""
    baseline = baseline or Baseline()
    active: list[Finding] = []
    suppressed: list[tuple[Finding, str]] = []
    baselined: list[tuple[Finding, BaselineEntry]] = []
    matched_entries: set[int] = set()
    files = iter_python_files(paths)
    for file_path in files:
        try:
            module = ModuleSource(
                file_path, file_path.read_text(encoding="utf-8")
            )
        except SyntaxError as exc:
            active.append(
                Finding(
                    rule="parse-error",
                    path=normalize_path(file_path),
                    line=exc.lineno or 1,
                    message=f"file does not parse: {exc.msg}",
                )
            )
            continue
        module_active, module_suppressed = check_module(module, rules)
        suppressed.extend(module_suppressed)
        for finding in module_active:
            entry = baseline.match(finding)
            if entry is not None:
                baselined.append((finding, entry))
                matched_entries.add(id(entry))
            else:
                active.append(finding)
    stale = [e for e in baseline.entries if id(e) not in matched_entries]
    active.sort(key=lambda f: (f.path, f.line, f.rule))
    return Report(
        findings=active,
        suppressed=suppressed,
        baselined=baselined,
        stale_baseline=stale,
        files_checked=len(files),
    )
