"""Static architecture lint for the repro warehouse.

``python -m repro.analysis --strict src tests`` is a CI gate: it runs
~9 AST rules that machine-enforce the contracts the warehouse's
correctness rests on — contracts that previously existed only as
ROADMAP prose.  The rules (see :mod:`repro.analysis.rules`):

======================  =================================================
``bare-except``         no ``except:`` / ``except BaseException:`` outside
                        ``repro/testing`` (would swallow
                        ``SimulatedCrashError``)
``wall-clock``          no wall-clock reads or unseeded randomness in
                        ``core``/``tuning``/``statsvc`` (virtual time +
                        ``derive_rng`` only; ``perf_counter`` allowed)
``float-billing``       no float ``+=`` on ``*_dollars`` balances
                        (integral ledger units via ``repro.util.units``)
``journal-site``        every journal append site is registered in
                        ``REGISTERED_JOURNAL_SITES`` for kill-point
                        matrix coverage
``metric-name``         every metric emitted or read through a registry
                        is a literal name declared in
                        ``repro.obsvc.metrics.REGISTERED_METRICS``
``stage-guard``         no broad ``try/except`` around the
                        bind/optimize/simulate fault points outside
                        ``StageGuard``
``naked-acquire``       locks held via ``with`` only, never
                        ``.acquire()``/``.release()``
``picklable-record``    journal records and ``ReproError`` fields
                        restricted to picklable plain-data types
``warehouse-kwargs``    ``CostIntelligentWarehouse.__init__`` keyword
                        surface frozen (extend ``Session`` /
                        ``TuningService`` instead)
======================  =================================================

**Adding a rule.**  Subclass :class:`~repro.analysis.engine.Rule` in
:mod:`repro.analysis.rules`, set ``rule_id`` (kebab-case) and
``description``, scope it with ``applies_to(module)`` (key on
``module.subpackage`` / ``module.norm``), yield findings from
``check(module)``, and decorate with ``@register``.  Every rule needs a
fixture pair in ``tests/analysis/test_rules.py`` — one snippet that
fires it and one that stays clean — plus the registry self-test
(``test_every_rule_fires_and_suppresses``) picks it up automatically.
Prefer syntactic checks keyed on the repo's own idioms over clever
inference: a rule that can false-positive is fine as long as the
suppression story is one obvious line.

**Suppression policy.**  A deliberate, reviewed exception is silenced
in place::

    summary.total_dollars += d  # lint-allow: float-billing sampled estimate

The justification is mandatory; a ``lint-allow`` comment naming only
the rule does not suppress and raises a ``suppression-format`` finding
instead.

**Baseline policy.**  ``baseline.json`` (next to this file) holds
grandfathered findings from before a rule existed, each with a
mandatory one-line justification.  Entries match on a hash of
rule + path + stripped source line, so they survive unrelated edits
but die with the offending line — fix the code and the entry goes
stale (reported as a warning; delete it).  New code never goes in the
baseline: suppress inline with a reason or fix it.

The runtime counterpart to this static lint is the lock-order
sanitizer in :mod:`repro.testing.locks`, which checks the one contract
an AST cannot see: a cycle-free lock acquisition order across threads.
"""

from repro.analysis import rules as rules  # registers the rule set
from repro.analysis.engine import (
    RULES,
    Baseline,
    BaselineEntry,
    Finding,
    ModuleSource,
    Report,
    Rule,
    analyze_paths,
    check_module,
    module_from_source,
    normalize_path,
    register,
)
from repro.analysis.rules import (
    REGISTERED_JOURNAL_SITES,
    WAREHOUSE_INIT_PARAMS,
)

__all__ = [
    "Baseline",
    "BaselineEntry",
    "Finding",
    "ModuleSource",
    "REGISTERED_JOURNAL_SITES",
    "RULES",
    "Report",
    "Rule",
    "WAREHOUSE_INIT_PARAMS",
    "analyze_paths",
    "check_module",
    "module_from_source",
    "normalize_path",
    "register",
    "rules",
]
