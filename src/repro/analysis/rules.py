"""The repo's architecture rules.

Each rule machine-enforces one invariant that PRs 3–7 established in
prose (ROADMAP "machine-checked invariants" section); the rule's
docstring names the contract and the failure it prevents.  Rules are
syntactic and conservative by design: they key on the repo's own
idioms (``_journal_append``, ``_fire_fault``, ``*_dollars``,
``*lock*.acquire``) rather than attempting type inference, so a
violation is a near-certain contract breach and a false positive is a
one-line ``# lint-allow: <rule> <why>`` away.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.engine import (
    Finding,
    ModuleSource,
    Rule,
    dotted_name,
    register,
)

#: Subpackages that must be deterministic and virtual-time only.
DETERMINISTIC_PACKAGES = frozenset({"core", "tuning", "statsvc", "obsvc"})

#: Every call site that appends to the write-ahead journal, keyed by
#: ``<normalized path>::<enclosing qualname>``.  The value records how
#: the site is covered by the kill-point recovery matrix
#: (``tests/recovery``): a new append site MUST be added here *and*
#: given crash-probe coverage, otherwise the ``journal-site`` rule
#: fails — a write site the kill-point matrix never crashes through is
#: a recovery path that has never been tested.
REGISTERED_JOURNAL_SITES: dict[str, str] = {
    "repro/core/warehouse.py::CostIntelligentWarehouse._journal_append": (
        "the single probe-bracketed WAL write: crash_pre_write / "
        "crash_post_write fire around journal.append here"
    ),
    "repro/core/warehouse.py::CostIntelligentWarehouse._charge_retry": (
        "RetryCharge records route through _journal_append; covered by "
        "the chaos matrix's retry billing replay checks"
    ),
    "repro/core/warehouse.py::CostIntelligentWarehouse.checkpoint": (
        "checkpoint compaction appends directly under the journal lock; "
        "covered by checkpoint/restore kill-point tests"
    ),
    "repro/core/warehouse.py::CostIntelligentWarehouse._log": (
        "QueryServed append per served query; covered by post-write "
        "crash replay tests"
    ),
    "repro/core/service.py::Session._admit": (
        "AdmissionDecision append per admitted/denied request; covered "
        "by admission replay tests"
    ),
    "repro/tuning/service.py::TuningService.apply": (
        "TuningIntent / TuningFailed / TuningCommit two-record "
        "protocol; covered by crash_pre_commit kill-point tests"
    ),
    "repro/tuning/service.py::TuningService.rollback": (
        "RollbackIntent / TuningFailed / RollbackCommit mirror "
        "protocol; covered by rollback kill-point tests"
    ),
    "repro/obsvc/collector.py::SnapshotCollector._append_snapshot": (
        "CostSnapshotTaken journaled write-ahead of the in-memory "
        "history append; covered by the collector crash-consistency "
        "kill-point tests (tests/obsvc/test_observability_recovery.py)"
    ),
}

#: The exact keyword surface of ``CostIntelligentWarehouse.__init__``.
#: Frozen on purpose: new serving features extend ``Session`` /
#: ``ServingScheduler``, new tuning features extend ``TuningService``
#: / ``TuningPolicy`` — the warehouse constructor is the narrow waist
#: and must not regrow a kwarg per feature.  Changing this list is an
#: explicit API decision made here, not a drive-by.
WAREHOUSE_INIT_PARAMS = frozenset(
    {
        "self",
        "database",
        "catalog",
        "hardware",
        "estimator",
        "sim_config",
        "max_dop",
        "explore_bushy",
        "plan_cache_size",
        "parameterized_serving",
        "tuning_policy",
        "retention_policy",
        "tenant_budgets",
        "resilience",
        "journal",
    }
)


def _handler_names(handler: ast.ExceptHandler) -> list[str | None]:
    """Dotted names caught by one handler (``None`` = bare except)."""
    if handler.type is None:
        return [None]
    if isinstance(handler.type, ast.Tuple):
        return [dotted_name(el) for el in handler.type.elts]
    return [dotted_name(handler.type)]


@register
class BareExceptRule(Rule):
    """No ``except:`` / ``except BaseException:`` outside repro/testing.

    ``SimulatedCrashError`` subclasses ``BaseException`` precisely so
    that production code cannot catch it — a simulated ``kill -9`` must
    tear the process model down through every frame.  A bare except
    anywhere in the serving/tuning path would swallow the crash and
    invalidate every kill-point recovery test.
    """

    rule_id = "bare-except"
    description = (
        "bare `except:` / `except BaseException:` outside repro/testing "
        "(would swallow SimulatedCrashError)"
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return not module.is_testing

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            for name in _handler_names(node):
                if name is None or name.split(".")[-1] == "BaseException":
                    what = "bare except" if name is None else f"except {name}"
                    yield self.finding(
                        module,
                        node,
                        f"{what} swallows SimulatedCrashError "
                        "(BaseException); catch Exception or a typed "
                        "ReproError",
                    )


_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "datetime.now",
        "datetime.datetime.now",
        "datetime.utcnow",
        "datetime.datetime.utcnow",
        "datetime.today",
        "datetime.date.today",
        "date.today",
    }
)


@register
class WallClockRule(Rule):
    """core/tuning/statsvc are virtual-time and seeded-RNG only.

    Simulated time comes from the workload (``at_time``) and modeled
    durations; randomness comes from :func:`repro.util.rng.derive_rng`.
    Wall-clock reads or unseeded RNG make billing, admission, and
    tuning decisions non-reproducible, which breaks replay-based
    recovery verification.  ``time.perf_counter`` / ``time.monotonic``
    are allowed: they measure host-side durations (stage timings,
    deadlines) and never feed modeled state.
    """

    rule_id = "wall-clock"
    description = (
        "wall-clock time or unseeded randomness in core/tuning/statsvc "
        "(virtual time + derive_rng only)"
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return module.subpackage in DETERMINISTIC_PACKAGES

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            if name in _WALL_CLOCK_CALLS:
                yield self.finding(
                    module,
                    node,
                    f"{name}() reads the wall clock; use workload virtual "
                    "time (at_time) or time.perf_counter for durations",
                )
            elif name.startswith("random."):
                yield self.finding(
                    module,
                    node,
                    f"{name}() is process-global unseeded randomness; use "
                    "repro.util.rng.derive_rng(seed, ...)",
                )
            elif name in (
                "default_rng",
                "np.random.default_rng",
                "numpy.random.default_rng",
            ):
                if not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node,
                        "default_rng() without a seed is entropy-seeded; "
                        "use repro.util.rng.derive_rng(seed, ...)",
                    )
            elif name.startswith(("np.random.", "numpy.random.")):
                yield self.finding(
                    module,
                    node,
                    f"{name}() uses numpy's global RNG; use "
                    "repro.util.rng.derive_rng(seed, ...)",
                )


@register
class FloatBillingRule(Rule):
    """Dollar balances accumulate in integral ledger units only.

    ``x.dollars += y`` in float drifts with accumulation order, so a
    crash-recovery replay (which re-adds the same charges in journal
    order) would not reproduce the live balance bit for bit.  All
    authoritative balances go through
    :func:`repro.util.units.to_ledger_units` into integer state;
    derived float views are computed on read.
    """

    rule_id = "float-billing"
    description = (
        "float `+=` on a *_dollars balance (accumulate ledger units via "
        "repro.util.units instead)"
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return module.subpackage in DETERMINISTIC_PACKAGES

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.AugAssign):
                continue
            if not isinstance(node.op, ast.Add):
                continue
            target = node.target
            name = (
                target.attr
                if isinstance(target, ast.Attribute)
                else target.id if isinstance(target, ast.Name) else ""
            )
            if name == "dollars" or name.endswith("_dollars"):
                yield self.finding(
                    module,
                    node,
                    f"float `+= ` on {name!r}: accumulate integral ledger "
                    "units (repro.util.units.to_ledger_units) and derive "
                    "the float view on read",
                )


@register
class JournalSiteRule(Rule):
    """Every journal append site must be registered for kill-point
    coverage.

    The crash-consistency guarantee is only as strong as the set of
    write sites the kill-point matrix crashes through.  A new
    ``_journal_append`` / ``journal.append`` call site must be added to
    ``REGISTERED_JOURNAL_SITES`` together with recovery-test coverage;
    the registry entry documents which tests cover it.
    """

    rule_id = "journal-site"
    description = (
        "journal append site not in REGISTERED_JOURNAL_SITES (kill-point "
        "matrix cannot cover it)"
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return module.in_repro and not module.is_testing

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            receiver = dotted_name(func.value) or ""
            is_site = func.attr == "_journal_append" or (
                func.attr == "append" and "journal" in receiver.lower()
            )
            if not is_site:
                continue
            key = f"{module.norm}::{module.enclosing_qualname(node)}"
            if key not in REGISTERED_JOURNAL_SITES:
                yield self.finding(
                    module,
                    node,
                    f"unregistered journal append site {key}; add it to "
                    "repro.analysis.rules.REGISTERED_JOURNAL_SITES with "
                    "kill-point test coverage",
                )


#: Registry-emission methods the ``metric-name`` rule audits.  Reads
#: (``value`` / ``sourced``) are included: a typo'd read silently
#: returns zero forever, which is exactly the drift the typed registry
#: exists to prevent.
_METRIC_METHODS = frozenset(
    {"counter", "gauge", "histogram", "source", "value", "sourced"}
)


@register
class MetricNameRule(Rule):
    """Every metric emitted or read must be declared in
    ``REGISTERED_METRICS``.

    The observability contract (PR 9) mirrors ``journal-site``: the
    typed registry in :mod:`repro.obsvc.metrics` raises
    ``MetricNameError`` at runtime for undeclared names, but only on
    paths a test actually exercises.  This rule closes the gap
    statically — any ``*.metrics.counter("name", ...)`` (or gauge /
    histogram / source / value / sourced) call whose name is not a
    string literal found in ``REGISTERED_METRICS`` fails the lint, so a
    typo'd or undeclared metric never ships.  Dynamic names are legal
    only behind an explicit ``# lint-allow: metric-name <why>``.
    """

    rule_id = "metric-name"
    description = (
        "metric emitted with a name not declared in "
        "repro.obsvc.metrics.REGISTERED_METRICS"
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return (
            module.in_repro
            and not module.is_testing
            and module.norm != "repro/obsvc/metrics.py"
        )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        from repro.obsvc.metrics import REGISTERED_METRICS

        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _METRIC_METHODS:
                continue
            receiver = dotted_name(func.value) or ""
            tail = receiver.lower().rsplit(".", 1)[-1]
            if "metric" not in tail and "registry" not in tail:
                continue
            first = node.args[0] if node.args else None
            if not isinstance(first, ast.Constant) or not isinstance(
                first.value, str
            ):
                yield self.finding(
                    module,
                    node,
                    f"{receiver}.{func.attr}() with a non-literal metric "
                    "name; the registry contract is auditable literal "
                    "names declared in REGISTERED_METRICS",
                )
            elif first.value not in REGISTERED_METRICS:
                yield self.finding(
                    module,
                    node,
                    f"undeclared metric {first.value!r}; declare it in "
                    "repro.obsvc.metrics.REGISTERED_METRICS with kind, "
                    "help text, and label names",
                )


_BROAD_CATCHES = frozenset(
    {"BaseException", "Exception", "TransientError", "InjectedFault",
     "ReproError"}
)
_GUARDED_STAGES = frozenset({"bind", "optimize", "simulate"})


@register
class StageGuardRule(Rule):
    """Fault points retry/fail only through StageGuard.

    ``StageGuard.run`` is the sanctioned wrapper for the bind /
    optimize / simulate fault points: it owns retry budgets, deadline
    charging, and typed error translation.  An ad-hoc broad
    ``try/except`` around a fault point double-retries, hides
    ``InjectedFault`` from the chaos matrix, or eats the typed errors
    the degraded path keys on.  Narrow typed catches (e.g. the
    sanctioned ``DeadlineExceededError`` degraded fallback) stay legal.
    """

    rule_id = "stage-guard"
    description = (
        "broad try/except around a bind/optimize/simulate fault point "
        "outside StageGuard"
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return (
            module.subpackage in {"core", "tuning"}
            and module.norm != "repro/core/resilience.py"
        )

    def _is_fault_point(self, node: ast.Call) -> bool:
        func = node.func
        name = func.attr if isinstance(func, ast.Attribute) else (
            func.id if isinstance(func, ast.Name) else ""
        )
        if name in ("_fire_fault", "_fault_decision"):
            return True
        if name == "run" and isinstance(func, ast.Attribute):
            receiver = dotted_name(func.value) or ""
            first = node.args[0] if node.args else None
            if (
                isinstance(first, ast.Constant)
                and first.value in _GUARDED_STAGES
            ):
                return True
            if "guard" in receiver.lower():
                return True
        return False

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Try):
                continue
            body_faults = [
                call
                for stmt in node.body
                for call in ast.walk(stmt)
                if isinstance(call, ast.Call) and self._is_fault_point(call)
            ]
            if not body_faults:
                continue
            for handler in node.handlers:
                for name in _handler_names(handler):
                    caught = name.split(".")[-1] if name else None
                    if caught is None or caught in _BROAD_CATCHES:
                        yield self.finding(
                            module,
                            handler,
                            f"except {caught or ''} around a fault point "
                            "(line "
                            f"{body_faults[0].lineno}); only StageGuard may "
                            "handle bind/optimize/simulate failures broadly",
                        )


@register
class NakedAcquireRule(Rule):
    """Locks are held via ``with`` only.

    A naked ``lock.acquire()`` has no exception-safe release path — a
    ``SimulatedCrashError`` or injected fault between acquire and
    release deadlocks every later request on that lock.  It is also
    invisible to the lock-order sanitizer's scope tracking.  The only
    sanctioned call sites are the sanitizer's own instrumented wrapper
    (inline-suppressed) — everything else uses ``with lock:``.
    """

    rule_id = "naked-acquire"
    description = (
        "naked lock .acquire()/.release() (use `with lock:` for "
        "exception safety)"
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return module.in_repro

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in ("acquire", "release"):
                continue
            receiver = dotted_name(func.value) or ""
            if "lock" not in receiver.lower():
                continue  # compute-pool lease acquire/release etc.
            yield self.finding(
                module,
                node,
                f"naked {receiver}.{func.attr}(); hold locks with "
                f"`with {receiver}:` so injected faults cannot leak a "
                "held lock",
            )


#: Annotation tokens that mark a field as process-local (unpicklable or
#: meaningless after restore).  Word-bounded so e.g. "Blocked" or a
#: record named "CallableSpec" would not false-positive.
_UNPICKLABLE_TOKENS = re.compile(
    r"\b(Callable|Lock|RLock|Thread|Condition|Generator|Iterator|"
    r"TextIO|BinaryIO|socket|weakref|Queue|FaultPlan|Session|"
    r"ThreadPoolExecutor)\b"
)


@register
class PicklableRecordRule(Rule):
    """Journal records and ReproErrors must stay picklable plain data.

    Recovery unpickles the journal in a fresh process: a record (or a
    journaled error) that references a closure, lock, thread, or live
    session object either fails to pickle (losing the write) or
    restores as garbage.  Fields must be primitives, containers, or
    other record dataclasses.
    """

    rule_id = "picklable-record"
    description = (
        "journal record / ReproError field annotated with a "
        "process-local type (must pickle into a fresh recovery process)"
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return module.norm in ("repro/core/journal.py", "repro/errors.py")

    def _check_annotation(
        self, module: ModuleSource, node: ast.AST, owner: str, field: str
    ) -> Iterator[Finding]:
        annotation = ast.unparse(node)
        match = _UNPICKLABLE_TOKENS.search(annotation)
        if match:
            yield self.finding(
                module,
                node,
                f"{owner}.{field} annotated {annotation!r}: "
                f"{match.group(1)} is process-local and cannot round-trip "
                "through pickle into the recovery process",
            )

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for cls in module.tree.body:
            if not isinstance(cls, ast.ClassDef):
                continue
            is_record = any(
                (dotted_name(d) or dotted_name(getattr(d, "func", ast.Pass())))
                in ("dataclass", "dataclasses.dataclass")
                for d in cls.decorator_list
            )
            is_error = cls.name.endswith("Error")
            if is_record:
                for stmt in cls.body:
                    if isinstance(stmt, ast.AnnAssign) and isinstance(
                        stmt.target, ast.Name
                    ):
                        yield from self._check_annotation(
                            module,
                            stmt.annotation,
                            cls.name,
                            stmt.target.id,
                        )
            if is_error:
                for stmt in cls.body:
                    if (
                        isinstance(stmt, ast.FunctionDef)
                        and stmt.name == "__init__"
                    ):
                        all_args = (
                            stmt.args.posonlyargs
                            + stmt.args.args
                            + stmt.args.kwonlyargs
                        )
                        for arg in all_args:
                            if arg.annotation is not None:
                                yield from self._check_annotation(
                                    module,
                                    arg.annotation,
                                    cls.name,
                                    arg.arg,
                                )


#: Modules that run inside planner worker *processes*.  Everything in
#: this set is held to the ``worker-isolation`` contract: workers
#: compute pure planning functions and must never reach the journal,
#: tenant bills, the statistics log, or the metrics registry — those
#: are ordered, exactly-once coordinator effects, and keeping them out
#: of the worker is what makes crash-restart + re-stage safe (a worker
#: can die and its tasks replay without double-billing or
#: double-logging).
WORKER_ISOLATED_MODULES = frozenset({"repro/core/sharding_worker.py"})

#: Import prefixes that carry coordinator authority (journal writes,
#: billing, admission, statistics/metrics emission).
_COORDINATOR_IMPORTS = (
    "repro.core.journal",
    "repro.core.service",
    "repro.core.warehouse",
    "repro.statsvc",
    "repro.obsvc",
)

#: Method names that perform coordinator-only effects.
_COORDINATOR_CALLS = frozenset(
    {"_journal_append", "_log", "_charge_retry", "_account", "record_query"}
)


@register
class WorkerIsolationRule(Rule):
    """Planner worker modules never touch coordinator authority.

    The process-sharded serving path (``repro.core.sharding``) keeps
    every journal append, ``TenantBill`` mutation, admission decision,
    and statistics-log write in the coordinator's ordered finalize
    phase; worker processes only bind and optimize.  This rule pins
    that statically for the worker entrypoint module: no imports of the
    journal/service/warehouse/statsvc/obsvc layers, no journal-append
    or billing/logging calls, no ``TenantBill`` references.  Without
    it, a drive-by "just log it in the worker" edit would silently
    break exactly-once semantics — a restarted worker replays its
    in-flight tasks, and any side effect it performed runs twice.
    """

    rule_id = "worker-isolation"
    description = (
        "coordinator authority (journal/billing/statistics/metrics) "
        "reachable from a planner worker module"
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return module.norm in WORKER_ISOLATED_MODULES

    def _forbidden_import(self, node: ast.AST) -> str | None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith(_COORDINATOR_IMPORTS):
                    return alias.name
        if isinstance(node, ast.ImportFrom) and node.module:
            if node.module.startswith(_COORDINATOR_IMPORTS):
                return node.module
        return None

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            name = self._forbidden_import(node)
            if name is not None:
                yield self.finding(
                    module,
                    node,
                    f"worker module imports {name}; journal, billing, "
                    "statistics, and metrics are coordinator-side only "
                    "(workers must stay restartable without replayed "
                    "side effects)",
                )
                continue
            if isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                receiver = dotted_name(node.func.value) or ""
                attr = node.func.attr
                is_journal_append = attr == "append" and (
                    "journal" in receiver.lower() or "log" in receiver.lower()
                )
                if attr in _COORDINATOR_CALLS or is_journal_append:
                    yield self.finding(
                        module,
                        node,
                        f"worker module calls {receiver}.{attr}(); ordered "
                        "exactly-once effects belong to the coordinator's "
                        "finalize phase",
                    )
            if (
                isinstance(node, ast.Name) and node.id == "TenantBill"
            ) or (
                isinstance(node, ast.Attribute) and node.attr == "TenantBill"
            ):
                yield self.finding(
                    module,
                    node,
                    "worker module references TenantBill; bills are "
                    "coordinator state — a worker touching one would "
                    "double-charge on crash-restart re-staging",
                )


@register
class WarehouseKwargsRule(Rule):
    """``CostIntelligentWarehouse.__init__`` keywords are frozen.

    The warehouse constructor is the narrow waist of the public API;
    serving extensions belong on ``Session`` / ``ServingScheduler`` and
    tuning extensions on ``TuningService`` / ``TuningPolicy``.  Growing
    a kwarg here is an explicit API decision recorded by editing
    ``WAREHOUSE_INIT_PARAMS`` in the same commit.
    """

    rule_id = "warehouse-kwargs"
    description = (
        "CostIntelligentWarehouse.__init__ keyword not in the frozen "
        "WAREHOUSE_INIT_PARAMS allowlist"
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return module.norm == "repro/core/warehouse.py"

    def check(self, module: ModuleSource) -> Iterator[Finding]:
        for cls in module.tree.body:
            if not isinstance(cls, ast.ClassDef):
                continue
            if cls.name != "CostIntelligentWarehouse":
                continue
            init = next(
                (
                    stmt
                    for stmt in cls.body
                    if isinstance(stmt, ast.FunctionDef)
                    and stmt.name == "__init__"
                ),
                None,
            )
            if init is None:
                continue
            args = init.args
            actual = [
                a.arg
                for a in args.posonlyargs + args.args + args.kwonlyargs
            ]
            for arg in args.posonlyargs + args.args + args.kwonlyargs:
                if arg.arg not in WAREHOUSE_INIT_PARAMS:
                    yield self.finding(
                        module,
                        arg.lineno,
                        f"new warehouse kwarg {arg.arg!r}: route the "
                        "feature through Session/TuningService, or record "
                        "the API decision in WAREHOUSE_INIT_PARAMS",
                    )
            for missing in sorted(WAREHOUSE_INIT_PARAMS - set(actual)):
                yield self.finding(
                    module,
                    init.lineno,
                    f"WAREHOUSE_INIT_PARAMS lists {missing!r} but __init__ "
                    "no longer takes it; update the allowlist",
                )
