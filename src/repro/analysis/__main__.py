"""CLI: ``python -m repro.analysis [paths...] [options]``.

Exit codes: 0 clean (or advisory mode), 1 unbaselined findings under
``--strict``, 2 usage error.  ``--json`` emits the machine-readable
report (the CI lint job archives it); the default output is one
``path:line: [rule] message`` line per finding.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis import rules as _rules  # noqa: F401  (registers rules)
from repro.analysis.engine import RULES, Baseline, analyze_paths

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"


def main(argv: "list[str] | None" = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST lint enforcing the repo's architecture contracts",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "tests"],
        help="files or directories to check (default: src tests)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="exit 1 on any unbaselined finding (CI mode)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        dest="as_json",
        help="emit the machine-readable report on stdout",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help=f"baseline file (default: {DEFAULT_BASELINE})",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print registered rule ids and exit",
    )
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule_id in sorted(RULES):
            print(f"{rule_id}: {RULES[rule_id].description}")
        return 0

    try:
        baseline = Baseline.load(args.baseline)
        report = analyze_paths(args.paths, baseline=baseline)
    except (FileNotFoundError, ValueError) as exc:
        parser.exit(2, f"error: {exc}\n")

    if args.as_json:
        print(json.dumps(report.to_json(), indent=2))
    else:
        for finding in report.findings:
            print(finding.render())
        for entry in report.stale_baseline:
            print(
                f"warning: stale baseline entry {entry.rule} at {entry.path} "
                f"({entry.fingerprint}) no longer matches anything; remove it",
                file=sys.stderr,
            )
        print(
            f"{len(report.findings)} finding(s) in {report.files_checked} "
            f"file(s) ({len(report.baselined)} baselined, "
            f"{len(report.suppressed)} suppressed)",
            file=sys.stderr,
        )
    if args.strict and report.findings:
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
