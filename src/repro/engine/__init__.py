"""Local columnar execution engine.

Executes physical plans for real on numpy data, single process.  Its role
in the reproduction is correctness ground truth: it produces true result
sets and true per-operator cardinalities, which the distributed simulator
and the DOP monitor experiments use as the "run-time feedback" the paper's
§3.3 relies on.
"""

from repro.engine.batch import Batch
from repro.engine.database import Database
from repro.engine.local_executor import ExecutionResult, LocalExecutor

__all__ = ["Batch", "Database", "LocalExecutor", "ExecutionResult"]
