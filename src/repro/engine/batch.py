"""Columnar batches: the unit of data the local engine processes."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExecutionError


@dataclass
class Batch:
    """A set of equal-length named columns (numpy arrays)."""

    columns: dict[str, np.ndarray]

    def __post_init__(self) -> None:
        lengths = {name: arr.shape[0] for name, arr in self.columns.items()}
        if len(set(lengths.values())) > 1:
            raise ExecutionError(f"ragged batch: {lengths}")

    @property
    def num_rows(self) -> int:
        if not self.columns:
            return 0
        return next(iter(self.columns.values())).shape[0]

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self.columns)

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise ExecutionError(f"batch has no column {name!r}") from None

    def select(self, names: tuple[str, ...]) -> "Batch":
        return Batch({name: self.column(name) for name in names})

    def filter(self, mask: np.ndarray) -> "Batch":
        if mask.dtype != np.bool_:
            raise ExecutionError(f"filter mask must be boolean, got {mask.dtype}")
        return Batch({name: arr[mask] for name, arr in self.columns.items()})

    def take(self, indices: np.ndarray) -> "Batch":
        return Batch({name: arr[indices] for name, arr in self.columns.items()})

    def head(self, n: int) -> "Batch":
        return Batch({name: arr[:n] for name, arr in self.columns.items()})

    def with_columns(self, extra: dict[str, np.ndarray]) -> "Batch":
        merged = dict(self.columns)
        merged.update(extra)
        return Batch(merged)

    @classmethod
    def empty(cls, names: tuple[str, ...]) -> "Batch":
        return cls({name: np.empty(0, dtype=np.float64) for name in names})

    @classmethod
    def concat(cls, batches: list["Batch"]) -> "Batch":
        if not batches:
            raise ExecutionError("cannot concat zero batches")
        names = batches[0].column_names
        for batch in batches[1:]:
            if batch.column_names != names:
                raise ExecutionError("cannot concat batches with differing columns")
        return cls(
            {
                name: np.concatenate([b.column(name) for b in batches])
                for name in names
            }
        )
