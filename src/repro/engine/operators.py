"""Vectorized operator implementations for the local engine.

Each function consumes/produces :class:`~repro.engine.batch.Batch` objects
and is a faithful single-node realization of the corresponding physical
operator.  The local engine's purpose is ground truth, not speed — but all
kernels are vectorized numpy, so TPC-H-like scale factors up to ~0.1 run
in seconds.
"""

from __future__ import annotations

import numpy as np

from repro.engine.batch import Batch
from repro.errors import ExecutionError
from repro.plan.expressions import AggCall, ColumnRef, Expr
from repro.plan.predicates import extract_column_ranges
from repro.storage.table_storage import StoredTable


# ---------------------------------------------------------------------- #
# Scan
# ---------------------------------------------------------------------- #
def execute_scan(
    table: StoredTable,
    columns: tuple[str, ...],
    predicate: Expr | None,
) -> tuple[Batch, int, int]:
    """Scan with zone-map pruning; returns (batch, partitions_read, rows_read).

    ``partitions_read``/``rows_read`` report post-pruning storage effort —
    the ground truth for the pruning benefit of clustering (§4).
    """
    ranges = extract_column_ranges(predicate)
    needed = set(columns)
    if predicate is not None:
        from repro.plan.expressions import referenced_columns

        needed |= referenced_columns(predicate)
    read_columns = tuple(sorted(needed))

    surviving = table.partitions
    for column, column_range in ranges.items():
        surviving = [
            p
            for p in surviving
            if not p.prunable_by_range(column, column_range.lo, column_range.hi)
        ]
    partitions_read = len(surviving)
    rows_read = sum(p.row_count for p in surviving)

    if not surviving:
        return Batch.empty(columns), 0, 0

    merged = {
        name: np.concatenate([p.column(name) for p in surviving])
        for name in read_columns
    }
    batch = Batch(merged)
    if predicate is not None:
        mask = np.asarray(predicate.evaluate(batch.columns), dtype=np.bool_)
        batch = batch.filter(mask)
    return batch.select(columns), partitions_read, rows_read


# ---------------------------------------------------------------------- #
# Filter / project
# ---------------------------------------------------------------------- #
def execute_filter(batch: Batch, predicate: Expr) -> Batch:
    mask = np.asarray(predicate.evaluate(batch.columns), dtype=np.bool_)
    if mask.shape == ():  # constant predicate
        mask = np.full(batch.num_rows, bool(mask), dtype=np.bool_)
    return batch.filter(mask)


def execute_project(batch: Batch, exprs: tuple[Expr, ...], names: tuple[str, ...]) -> Batch:
    columns: dict[str, np.ndarray] = {}
    for expr, name in zip(exprs, names):
        value = np.asarray(expr.evaluate(batch.columns))
        if value.shape == ():
            value = np.full(batch.num_rows, value)
        columns[name] = value
    return Batch(columns)


# ---------------------------------------------------------------------- #
# Hash join
# ---------------------------------------------------------------------- #
def execute_hash_join(
    build: Batch,
    probe: Batch,
    build_keys: tuple[ColumnRef, ...],
    probe_keys: tuple[ColumnRef, ...],
    residual: Expr | None = None,
) -> Batch:
    """Inner equi-join; output columns = probe columns + build columns."""
    build_key, probe_key = _combine_key_pair(
        build,
        probe,
        tuple(k.name for k in build_keys),
        tuple(k.name for k in probe_keys),
    )

    order = np.argsort(build_key, kind="stable")
    sorted_keys = build_key[order]
    lo = np.searchsorted(sorted_keys, probe_key, side="left")
    hi = np.searchsorted(sorted_keys, probe_key, side="right")
    counts = hi - lo
    total = int(counts.sum())

    probe_rows = np.repeat(np.arange(probe_key.size), counts)
    if total:
        offsets = np.concatenate(([0], np.cumsum(counts)))[:-1]
        within = np.arange(total) - np.repeat(offsets, counts)
        build_rows = order[np.repeat(lo, counts) + within]
    else:
        build_rows = np.empty(0, dtype=np.int64)

    columns: dict[str, np.ndarray] = {}
    for name, arr in probe.columns.items():
        columns[name] = arr[probe_rows]
    for name, arr in build.columns.items():
        if name in columns:
            raise ExecutionError(f"duplicate column {name!r} in join output")
        columns[name] = arr[build_rows]
    joined = Batch(columns)
    if residual is not None:
        joined = execute_filter(joined, residual)
    return joined


def _combine_key_pair(
    build: Batch,
    probe: Batch,
    build_names: tuple[str, ...],
    probe_names: tuple[str, ...],
) -> tuple[np.ndarray, np.ndarray]:
    """Encode multi-column join keys into aligned int64 composites.

    The per-position value domain must be shared between the two sides —
    otherwise identical key tuples would encode to different composites.
    The direct encoding multiplies per-position domain spans; when that
    product cannot fit in int64 the keys are factorized into dense codes
    instead (an extra sort per column, but exact at any domain width).
    """
    build_arrays = [_int_key(build, name) for name in build_names]
    probe_arrays = [_int_key(probe, name) for name in probe_names]
    if len(build_arrays) == 1:
        return build_arrays[0], probe_arrays[0]

    offsets_spans: list[tuple[int, int]] = []
    span_product = 1
    for b_arr, p_arr in zip(build_arrays, probe_arrays):
        lo = min(
            int(b_arr.min()) if b_arr.size else 0,
            int(p_arr.min()) if p_arr.size else 0,
        )
        hi = max(
            int(b_arr.max()) if b_arr.size else 0,
            int(p_arr.max()) if p_arr.size else 0,
        )
        span = hi - lo + 1
        offsets_spans.append((lo, span))
        span_product *= span  # Python int: no wraparound while checking
    if span_product >= 2**63:
        return _factorized_key_pair(build_arrays, probe_arrays)

    build_combined = np.zeros(build.num_rows, dtype=np.int64)
    probe_combined = np.zeros(probe.num_rows, dtype=np.int64)
    for (lo, span), b_arr, p_arr in zip(offsets_spans, build_arrays, probe_arrays):
        build_combined = build_combined * span + (b_arr - lo)
        probe_combined = probe_combined * span + (p_arr - lo)
    return build_combined, probe_combined


def _factorized_key_pair(
    build_arrays: list[np.ndarray], probe_arrays: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Composite keys via dense per-column codes shared across sides.

    Each fold combines codes bounded by the total row count, and the
    combination is re-densified before the next column, so intermediate
    products stay below ``rows**2`` — far inside int64 — regardless of
    how wide the raw value domains are.
    """
    n_build = build_arrays[0].size
    combined: np.ndarray | None = None
    for b_arr, p_arr in zip(build_arrays, probe_arrays):
        merged = np.concatenate([b_arr, p_arr])
        _, codes = np.unique(merged, return_inverse=True)
        codes = codes.astype(np.int64)
        card = int(codes.max()) + 1 if codes.size else 1
        if combined is None:
            combined = codes
        else:
            combined = combined * card + codes
            _, combined = np.unique(combined, return_inverse=True)
            combined = combined.astype(np.int64)
    assert combined is not None
    return combined[:n_build], combined[n_build:]


def _int_key(batch: Batch, name: str) -> np.ndarray:
    arr = batch.column(name)
    if not np.issubdtype(arr.dtype, np.integer):
        raise ExecutionError(
            f"join key {name!r} must be integer-typed, got {arr.dtype}"
        )
    return arr.astype(np.int64)


# ---------------------------------------------------------------------- #
# Aggregation
# ---------------------------------------------------------------------- #
def execute_aggregate(
    batch: Batch,
    group_keys: tuple[ColumnRef, ...],
    aggregates: tuple[AggCall, ...],
    agg_names: tuple[str, ...],
) -> Batch:
    """Full hash aggregation (the engine's SINGLE/FINAL modes)."""
    n = batch.num_rows
    if group_keys:
        key_arrays = [batch.column(k.name) for k in group_keys]
        uniques, inverse = _factorize(key_arrays)
        num_groups = uniques[0].size
    else:
        inverse = np.zeros(n, dtype=np.int64)
        num_groups = 1 if n else 0
        uniques = []

    columns: dict[str, np.ndarray] = {}
    for key, unique_values in zip(group_keys, uniques):
        columns[key.name] = unique_values

    for agg, name in zip(aggregates, agg_names):
        columns[name] = _aggregate_column(agg, batch, inverse, num_groups)

    if not group_keys and n == 0:
        # SQL semantics: global aggregates over empty input yield one row.
        for agg, name in zip(aggregates, agg_names):
            if agg.func == "count":
                columns[name] = np.zeros(1, dtype=np.int64)
            else:
                columns[name] = np.full(1, np.nan)
        return Batch(columns)
    return Batch(columns)


def _factorize(key_arrays: list[np.ndarray]) -> tuple[list[np.ndarray], np.ndarray]:
    """Group-key factorization: unique key tuples + per-row group index."""
    inverses = []
    cards = []
    uniques_per_col = []
    for arr in key_arrays:
        unique_values, inverse = np.unique(arr, return_inverse=True)
        uniques_per_col.append(unique_values)
        inverses.append(inverse.astype(np.int64))
        cards.append(unique_values.size)
    combined = inverses[0]
    for inverse, card in zip(inverses[1:], cards[1:]):
        combined = combined * card + inverse
    group_codes, group_inverse = np.unique(combined, return_inverse=True)
    # Recover per-column unique values for each group code.
    outputs: list[np.ndarray] = []
    codes = group_codes.copy()
    for unique_values, card in zip(reversed(uniques_per_col), reversed(cards)):
        outputs.append(unique_values[codes % card])
        codes = codes // card
    outputs.reverse()
    return outputs, group_inverse.astype(np.int64)


def _aggregate_column(
    agg: AggCall, batch: Batch, inverse: np.ndarray, num_groups: int
) -> np.ndarray:
    if agg.func == "count" and agg.arg is None:
        return np.bincount(inverse, minlength=num_groups).astype(np.int64)

    assert agg.arg is not None
    values = np.asarray(agg.arg.evaluate(batch.columns), dtype=np.float64)
    if values.shape == ():
        values = np.full(inverse.size, float(values))

    if agg.distinct:
        if agg.func != "count":
            raise ExecutionError(f"DISTINCT is only supported for count, not {agg.func}")
        # Distinct count: first row of each (group, value) run after lexsort.
        order = np.lexsort((values, inverse))
        g_sorted, v_sorted = inverse[order], values[order]
        new_pair = np.ones(inverse.size, dtype=bool)
        if inverse.size > 1:
            new_pair[1:] = (g_sorted[1:] != g_sorted[:-1]) | (v_sorted[1:] != v_sorted[:-1])
        return np.bincount(g_sorted[new_pair], minlength=num_groups).astype(np.int64)

    if agg.func == "count":
        return np.bincount(inverse, minlength=num_groups).astype(np.int64)
    if agg.func == "sum":
        return np.bincount(inverse, weights=values, minlength=num_groups)
    if agg.func == "avg":
        sums = np.bincount(inverse, weights=values, minlength=num_groups)
        counts = np.bincount(inverse, minlength=num_groups)
        with np.errstate(invalid="ignore", divide="ignore"):
            return sums / counts
    if agg.func == "min":
        out = np.full(num_groups, np.inf)
        np.minimum.at(out, inverse, values)
        return out
    if agg.func == "max":
        out = np.full(num_groups, -np.inf)
        np.maximum.at(out, inverse, values)
        return out
    raise ExecutionError(f"unsupported aggregate {agg.func!r}")


# ---------------------------------------------------------------------- #
# Sort / limit
# ---------------------------------------------------------------------- #
def execute_sort(
    batch: Batch,
    keys: tuple[str, ...],
    ascending: tuple[bool, ...],
    limit: int | None = None,
) -> Batch:
    """Stable multi-key sort; optional top-k truncation."""
    if batch.num_rows == 0:
        return batch
    # np.lexsort sorts by the LAST key first; feed keys reversed.
    sort_columns = []
    for key, asc in zip(reversed(keys), reversed(ascending)):
        arr = batch.column(key)
        sort_columns.append(arr if asc else _descending_view(arr))
    order = np.lexsort(tuple(sort_columns))
    if limit is not None:
        order = order[:limit]
    return batch.take(order)


def _descending_view(arr: np.ndarray) -> np.ndarray:
    """An order-reversing view of ``arr`` for descending sort keys.

    Integer keys use bitwise complement (``-x - 1`` for signed,
    ``max - x`` for unsigned): exactly order-reversing in the original
    dtype, with no overflow at the extremes and no precision loss — a
    float64 negation collapses distinct int64 values above 2**53.
    """
    if np.issubdtype(arr.dtype, np.bool_):
        return ~arr
    if np.issubdtype(arr.dtype, np.integer):
        return ~arr
    return -arr.astype(np.float64)


def execute_limit(batch: Batch, limit: int) -> Batch:
    return batch.head(limit)
