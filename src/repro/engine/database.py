"""Database: catalog + stored tables + object-store, bundled.

One object that owns everything a query needs: the metadata (catalog with
statistics and dictionaries), the physical data (micro-partitioned stored
tables), and the object-store pricing envelope.  The warehouse facade,
the local engine, and the workload loaders all share this.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.catalog import Catalog, TableEntry
from repro.catalog.schema import DataType, TableSchema
from repro.catalog.statistics import build_table_stats
from repro.errors import CatalogError
from repro.storage.micropartition import DEFAULT_PARTITION_ROWS
from repro.storage.objectstore import ObjectStore
from repro.storage.table_storage import StoredTable


class Database:
    """Holds the catalog and the physical tables backing it."""

    def __init__(self, object_store: ObjectStore | None = None) -> None:
        self.catalog = Catalog()
        self.store = object_store or ObjectStore()
        self._tables: dict[str, StoredTable] = {}

    # ------------------------------------------------------------------ #
    # Loading
    # ------------------------------------------------------------------ #
    def create_table(
        self,
        schema: TableSchema,
        columns: dict[str, np.ndarray],
        *,
        dictionaries: dict[str, tuple[str, ...]] | None = None,
        partition_rows: int = DEFAULT_PARTITION_ROWS,
        cluster_key: str | None = None,
        stats_sample_rate: float = 1.0,
    ) -> TableEntry:
        """Materialize a table: partitions, zone maps, stats, catalog entry.

        ``dictionaries`` maps STRING column names to their sorted value
        dictionaries (codes must already be applied to ``columns``).
        """
        dictionaries = dictionaries or {}
        for col in schema.columns:
            if col.dtype is DataType.STRING and col.name not in dictionaries:
                raise CatalogError(
                    f"string column {schema.name}.{col.name} needs a dictionary"
                )
        stored = StoredTable.from_columns(
            schema,
            columns,
            partition_rows=partition_rows,
            cluster_key=cluster_key,
        )
        stats = build_table_stats(schema, columns, sample_rate=stats_sample_rate)
        depth = 1.0
        if cluster_key is not None:
            depth = stored.clustering_depth(cluster_key)
        entry = TableEntry(
            schema=stored.schema,
            stats=stats,
            storage_bytes=stored.stored_bytes(),
            num_partitions=stored.num_partitions,
            dictionaries=dict(dictionaries),
            clustering_depth=depth,
        )
        self.catalog.register_table(entry, replace_existing=False)
        self._tables[schema.name] = stored
        self.store.put(f"tables/{schema.name}", stored.stored_bytes())
        return entry

    def drop_table(self, name: str) -> None:
        """Remove a table's data, catalog entry, and object-store key
        (used by the tuning layer to roll back a materialized view)."""
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[name]
        self.catalog.drop_table(name)
        if self.store.exists(f"tables/{name}"):
            self.store.delete(f"tables/{name}")

    def replace_table_storage(self, name: str, stored: StoredTable) -> None:
        """Swap a table's physical layout (used by the recluster action)."""
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        self._tables[name] = stored
        entry = self.catalog.table(name)
        key = stored.schema.clustering_key
        depth = stored.clustering_depth(key) if key else 1.0
        self.catalog.set_clustering(name, key, depth)
        if self.store.exists(f"tables/{name}"):
            self.store.delete(f"tables/{name}")
        self.store.put(f"tables/{name}", stored.stored_bytes())

    # ------------------------------------------------------------------ #
    # Access
    # ------------------------------------------------------------------ #
    def stored_table(self, name: str) -> StoredTable:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def decode_strings(self, table: str, column: str, codes: np.ndarray) -> list[str]:
        """Translate dictionary codes back to strings (for display)."""
        dictionary = self.catalog.table(table).dictionaries.get(column)
        if dictionary is None:
            raise CatalogError(f"{table}.{column} has no dictionary")
        return [dictionary[int(code)] for code in codes]
