"""Local plan executor: runs a physical plan on real data.

Returns the result batch plus *true per-operator cardinalities*, which
are the run-time feedback signal for the DOP monitor experiments (§3.3)
and the accuracy baseline for the cardinality estimator tests.

Two-phase aggregation note: ``AggMode.PARTIAL`` operators are executed as
pass-through here (the FINAL phase sees all rows and produces identical
results); the partial phase only matters for the distributed cost models.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.engine.batch import Batch
from repro.engine.database import Database
from repro.engine.operators import (
    execute_aggregate,
    execute_filter,
    execute_hash_join,
    execute_limit,
    execute_project,
    execute_scan,
    execute_sort,
)
from repro.errors import ExecutionError
from repro.plan.physical import (
    AggMode,
    PhysAggregate,
    PhysExchange,
    PhysFilter,
    PhysHashJoin,
    PhysLimit,
    PhysNode,
    PhysProject,
    PhysScan,
    PhysSort,
)


@dataclass
class ExecutionResult:
    """Result batch plus per-node truth used as run-time feedback."""

    batch: Batch
    true_rows: dict[int, int] = field(default_factory=dict)
    partitions_read: dict[int, int] = field(default_factory=dict)
    rows_scanned: dict[int, int] = field(default_factory=dict)
    wall_seconds: float = 0.0

    @property
    def num_rows(self) -> int:
        return self.batch.num_rows


class LocalExecutor:
    """Executes physical plans against a :class:`Database`."""

    def __init__(self, database: Database) -> None:
        self.database = database

    def execute(self, plan: PhysNode) -> ExecutionResult:
        result = ExecutionResult(batch=Batch({}))
        started = time.perf_counter()
        result.batch = self._run(plan, result)
        result.wall_seconds = time.perf_counter() - started
        return result

    def _run(self, node: PhysNode, result: ExecutionResult) -> Batch:
        if isinstance(node, PhysScan):
            table = self.database.stored_table(node.table)
            batch, partitions, rows_read = execute_scan(
                table, node.columns, node.predicate
            )
            result.partitions_read[node.node_id] = partitions
            result.rows_scanned[node.node_id] = rows_read
        elif isinstance(node, PhysFilter):
            batch = execute_filter(self._run(node.child, result), node.predicate)
        elif isinstance(node, PhysProject):
            batch = execute_project(self._run(node.child, result), node.exprs, node.names)
        elif isinstance(node, PhysExchange):
            batch = self._run(node.child, result)  # exchange is a no-op locally
        elif isinstance(node, PhysHashJoin):
            build = self._run(node.build, result)
            probe = self._run(node.probe, result)
            batch = execute_hash_join(
                build, probe, node.build_keys, node.probe_keys, node.residual
            )
        elif isinstance(node, PhysAggregate):
            child = self._run(node.child, result)
            if node.mode is AggMode.PARTIAL:
                batch = child
            else:
                batch = execute_aggregate(
                    child,
                    node.group_keys,
                    node.aggregates,
                    node.agg_names,
                )
        elif isinstance(node, PhysSort):
            batch = execute_sort(
                self._run(node.child, result),
                node.keys,
                node.ascending,
                node.limit,
            )
        elif isinstance(node, PhysLimit):
            batch = execute_limit(self._run(node.child, result), node.limit)
        else:
            raise ExecutionError(f"cannot execute {type(node).__name__}")
        result.true_rows[node.node_id] = batch.num_rows
        return batch
