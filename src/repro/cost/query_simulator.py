"""Query-level analytic simulator (paper §3.1).

"Based on the per-operator scalability models, we can compute the
throughput of an operator pipeline given a DOP assignment and thus
estimate its execution time and total machine time (∝ cost).  The query
simulator then models the data flow in each pipeline of a query plan."

This is the *lightweight* simulator the optimizer invokes many times per
query: an ASAP schedule of the pipeline DAG where each pipeline runs for
its modeled duration, concurrent pipelines overlap freely, and breaker
pipelines hold their nodes (billed, idle) until their consumer starts —
the "accumulated blocked time" the DOP planner minimizes.

Not to be confused with :mod:`repro.sim.distsim`, the heavyweight
discrete-event simulator that plays the role of the real cluster.
"""

from __future__ import annotations

from repro.compute.node import NodeSpec
from repro.cost.estimate import CostEstimate, PipelineCost
from repro.cost.operator_models import OperatorModels, PipelineTiming
from repro.errors import EstimationError
from repro.plan.pipelines import PipelineDag


def simulate_dag(
    dag: PipelineDag,
    dops: dict[int, int],
    models: OperatorModels,
    *,
    overrides: dict[int, float] | None = None,
    price_per_node_second: float | None = None,
    include_provisioning: bool = True,
) -> CostEstimate:
    """Schedule the pipeline DAG and price it.

    ``dops`` maps pipeline id -> degree of parallelism (node count).
    ``overrides`` maps plan-node id -> observed true cardinality.
    ``include_provisioning`` adds the warm-pool attach latency to every
    pipeline that must acquire nodes beyond those inherited from its
    finished producers.
    """
    pipeline_timings: dict[int, PipelineTiming] = {}
    for pipeline in dag:
        pid = pipeline.pipeline_id
        dop = dops.get(pid)
        if dop is None:
            raise EstimationError(f"no DOP for pipeline {pid}")
        pipeline_timings[pid] = models.pipeline_timing(pipeline, dop, overrides)
    return schedule_timings(
        dag,
        dops,
        pipeline_timings,
        models,
        price_per_node_second=price_per_node_second,
        include_provisioning=include_provisioning,
    )


def schedule_timings(
    dag: PipelineDag,
    dops: dict[int, int],
    pipeline_timings: dict[int, PipelineTiming],
    models: OperatorModels,
    *,
    price_per_node_second: float | None = None,
    include_provisioning: bool = True,
) -> CostEstimate:
    """ASAP-schedule and price a DAG from already-computed timings.

    This is the cheap O(pipelines) tail of :func:`simulate_dag`; the DOP
    planner calls it directly when costing a candidate move where all but
    one pipeline's timing is already known.
    """
    spec: NodeSpec = models.hw.node
    rate = (
        price_per_node_second
        if price_per_node_second is not None
        else spec.price_per_second
    )

    inherited: dict[int, int] = {pid: 0 for pid in dops}
    for pipeline in dag:
        if pipeline.consumer_id is not None and pipeline.consumer_id in inherited:
            inherited[pipeline.consumer_id] += dops.get(pipeline.pipeline_id, 0)

    timings: dict[int, tuple[float, str, float]] = {}
    for pipeline in dag:
        pid = pipeline.pipeline_id
        dop = dops[pid]
        timing = pipeline_timings[pid]
        duration = timing.duration
        if include_provisioning and dop > inherited.get(pid, 0):
            duration += models.hw.warm_attach_latency_s
        timings[pid] = (duration, timing.bottleneck, timing.source_rows)

    # ASAP schedule over blocking dependencies.
    start: dict[int, float] = {}
    finish: dict[int, float] = {}
    for pipeline in dag.topological_order():
        pid = pipeline.pipeline_id
        begin = max(
            (finish[dep] for dep in pipeline.blocking_deps),
            default=0.0,
        )
        start[pid] = begin
        finish[pid] = begin + timings[pid][0]

    estimate = CostEstimate(latency=0.0, machine_seconds=0.0, dollars=0.0)
    latency = max(finish.values(), default=0.0)
    for pipeline in dag:
        pid = pipeline.pipeline_id
        duration, bottleneck, source_rows = timings[pid]
        if pipeline.consumer_id is not None:
            waste = max(0.0, start[pipeline.consumer_id] - finish[pid])
        else:
            waste = 0.0
        cost = PipelineCost(
            pipeline_id=pid,
            dop=dops[pid],
            start=start[pid],
            duration=duration,
            waste=waste,
            bottleneck=bottleneck,
            source_rows=source_rows,
        )
        estimate.pipelines[pid] = cost
        estimate.machine_seconds += cost.machine_seconds

    estimate.latency = latency
    estimate.dollars = estimate.machine_seconds * rate
    return estimate
