"""Query-level analytic simulator (paper §3.1).

"Based on the per-operator scalability models, we can compute the
throughput of an operator pipeline given a DOP assignment and thus
estimate its execution time and total machine time (∝ cost).  The query
simulator then models the data flow in each pipeline of a query plan."

This is the *lightweight* simulator the optimizer invokes many times per
query: an ASAP schedule of the pipeline DAG where each pipeline runs for
its modeled duration, concurrent pipelines overlap freely, and breaker
pipelines hold their nodes (billed, idle) until their consumer starts —
the "accumulated blocked time" the DOP planner minimizes.

Not to be confused with :mod:`repro.sim.distsim`, the heavyweight
discrete-event simulator that plays the role of the real cluster.
"""

from __future__ import annotations

from repro.compute.node import NodeSpec
from repro.cost.estimate import CostEstimate, PipelineCost
from repro.cost.operator_models import OperatorModels, PipelineTiming
from repro.errors import EstimationError
from repro.plan.pipelines import PipelineDag


def simulate_dag(
    dag: PipelineDag,
    dops: dict[int, int],
    models: OperatorModels,
    *,
    overrides: dict[int, float] | None = None,
    price_per_node_second: float | None = None,
    include_provisioning: bool = True,
) -> CostEstimate:
    """Schedule the pipeline DAG and price it.

    ``dops`` maps pipeline id -> degree of parallelism (node count).
    ``overrides`` maps plan-node id -> observed true cardinality.
    ``include_provisioning`` adds the warm-pool attach latency to every
    pipeline that must acquire nodes beyond those inherited from its
    finished producers.
    """
    pipeline_timings: dict[int, PipelineTiming] = {}
    for pipeline in dag:
        pid = pipeline.pipeline_id
        dop = dops.get(pid)
        if dop is None:
            raise EstimationError(f"no DOP for pipeline {pid}")
        pipeline_timings[pid] = models.pipeline_timing(pipeline, dop, overrides)
    return schedule_timings(
        dag,
        dops,
        pipeline_timings,
        models,
        price_per_node_second=price_per_node_second,
        include_provisioning=include_provisioning,
    )


def schedule_timings(
    dag: PipelineDag,
    dops: dict[int, int],
    pipeline_timings: dict[int, PipelineTiming],
    models: OperatorModels,
    *,
    price_per_node_second: float | None = None,
    include_provisioning: bool = True,
) -> CostEstimate:
    """ASAP-schedule and price a DAG from already-computed timings.

    This is the cheap O(pipelines) tail of :func:`simulate_dag`; the DOP
    planner calls it directly when costing a candidate move where all but
    one pipeline's timing is already known.
    """
    spec: NodeSpec = models.hw.node
    rate = (
        price_per_node_second
        if price_per_node_second is not None
        else spec.price_per_second
    )

    inherited: dict[int, int] = {pid: 0 for pid in dops}
    for pipeline in dag:
        if pipeline.consumer_id is not None and pipeline.consumer_id in inherited:
            inherited[pipeline.consumer_id] += dops.get(pipeline.pipeline_id, 0)

    timings: dict[int, tuple[float, str, float]] = {}
    for pipeline in dag:
        pid = pipeline.pipeline_id
        dop = dops[pid]
        timing = pipeline_timings[pid]
        duration = timing.duration
        if include_provisioning and dop > inherited.get(pid, 0):
            duration += models.hw.warm_attach_latency_s
        timings[pid] = (duration, timing.bottleneck, timing.source_rows)

    # ASAP schedule over blocking dependencies.
    start: dict[int, float] = {}
    finish: dict[int, float] = {}
    for pipeline in dag.topological_order():
        pid = pipeline.pipeline_id
        begin = max(
            (finish[dep] for dep in pipeline.blocking_deps),
            default=0.0,
        )
        start[pid] = begin
        finish[pid] = begin + timings[pid][0]

    estimate = CostEstimate(latency=0.0, machine_seconds=0.0, dollars=0.0)
    latency = max(finish.values(), default=0.0)
    for pipeline in dag:
        pid = pipeline.pipeline_id
        duration, bottleneck, source_rows = timings[pid]
        if pipeline.consumer_id is not None:
            waste = max(0.0, start[pipeline.consumer_id] - finish[pid])
        else:
            waste = 0.0
        cost = PipelineCost(
            pipeline_id=pid,
            dop=dops[pid],
            start=start[pid],
            duration=duration,
            waste=waste,
            bottleneck=bottleneck,
            source_rows=source_rows,
        )
        estimate.pipelines[pid] = cost
        estimate.machine_seconds += cost.machine_seconds

    estimate.latency = latency
    estimate.dollars = estimate.machine_seconds * rate
    return estimate


class ScheduleSweeper:
    """Batched lean scheduling of single-pipeline DOP moves on one DAG.

    The DOP planner's greedy rounds evaluate many candidate assignments
    that differ from the incumbent in exactly one pipeline's DOP, so the
    DAG structure — iteration order, topological order, blocking
    dependencies, consumer edges — is shared by every candidate and is
    precomputed here once per search (as positional indexes; no dict
    lookups on the per-candidate path).  :meth:`sweep` then prices a
    whole round of moves, returning per move exactly the ``(latency,
    machine_seconds)`` that :func:`schedule_timings` would produce for
    the mutated assignment — the same arithmetic in the same order, so
    the floats are bit-identical — without building per-candidate
    ``CostEstimate``/``PipelineCost`` objects.  The planner materializes
    a full estimate only at phase boundaries.
    """

    def __init__(
        self,
        dag: PipelineDag,
        models: OperatorModels,
        *,
        include_provisioning: bool = True,
    ) -> None:
        self.attach = models.hw.warm_attach_latency_s
        self.include_provisioning = include_provisioning
        self.pids = [p.pipeline_id for p in dag]
        self.index = {pid: i for i, pid in enumerate(self.pids)}
        self.consumer: list[int | None] = [
            self.index.get(p.consumer_id) if p.consumer_id is not None else None
            for p in dag
        ]
        topo = dag.topological_order()
        self._topo_pairs = [
            (
                self.index[p.pipeline_id],
                tuple(self.index[dep] for dep in p.blocking_deps),
            )
            for p in topo
        ]
        self.deps_by_pos: list[tuple[int, ...]] = [()] * len(self.pids)
        for position, deps in self._topo_pairs:
            self.deps_by_pos[position] = deps

    def filter_gainful(
        self,
        dops: list[int],
        durations: list[float],
        candidates: list[tuple[int, int]],
    ) -> tuple[list[bool], float, float, tuple[list[int], list[float]]]:
        """Which ``(position, new_dop)`` candidates can reduce latency.

        Schedules the *base* assignment once and marks the pipelines on
        a critical chain (start equals a dependency's finish all the
        way up from a latency-achieving pipeline).  A single-pipeline
        move at position ``p`` changes only ``p``'s duration and — when
        the added nodes flip the consumer's warm-attach condition off —
        its direct consumer's; every dependency chain avoiding the
        changed pipelines is scheduled bit-identically, so unless one
        of them is on some critical chain the move's latency is >= the
        base latency: its gain is <= 0 and a gain-scored greedy round
        discards it without ever costing it.  Returns the keep flags
        plus the base ``(latency, machine_seconds)`` to report for
        pruned candidates (any value would do — the planner's gain
        check discards them — but the base metrics keep reports
        honest), and the built base state for :meth:`sweep` to reuse.
        """
        attach = self.attach
        provisioning = self.include_provisioning
        consumer = self.consumer
        n = len(self.pids)

        inherited = [0] * n
        for i in range(n):
            c = consumer[i]
            if c is not None:
                inherited[c] += dops[i]
        durs = list(durations)
        if provisioning:
            for i in range(n):
                if dops[i] > inherited[i]:
                    durs[i] += attach

        start = [0.0] * n
        finish = [0.0] * n
        for i, deps in self._topo_pairs:
            begin = 0.0
            for dep in deps:
                done = finish[dep]
                if done > begin:
                    begin = done
            start[i] = begin
            finish[i] = begin + durs[i]
        latency = max(finish) if n else 0.0
        machine_seconds = 0.0
        for i in range(n):
            c = consumer[i]
            if c is not None:
                waste = start[c] - finish[i]
                if waste < 0.0:
                    waste = 0.0
            else:
                waste = 0.0
            machine_seconds += dops[i] * (durs[i] + waste)

        # Backward critical-chain marking: latency achievers, then every
        # dependency whose finish binds its consumer's start.
        critical = [False] * n
        stack = [i for i in range(n) if finish[i] == latency]
        for i in stack:
            critical[i] = True
        while stack:
            i = stack.pop()
            begin = start[i]
            for dep in self.deps_by_pos[i]:
                if not critical[dep] and finish[dep] == begin:
                    critical[dep] = True
                    stack.append(dep)
        keep = []
        for p, new_dop in candidates:
            if critical[p]:
                keep.append(True)
                continue
            c = consumer[p]
            if c is None or not critical[c] or not provisioning:
                keep.append(False)
                continue
            # The consumer's duration changes only when the candidate's
            # extra nodes flip its warm-attach condition off.
            flips = (
                dops[c] > inherited[c]
                and dops[c] <= inherited[c] - dops[p] + new_dop
            )
            keep.append(flips)
        return keep, latency, machine_seconds, (inherited, durs)

    def sweep(
        self,
        dops: list[int],
        durations: list[float],
        moves: list[tuple[int, int, float]],
        state: tuple[list[int], list[float]] | None = None,
    ) -> list[tuple[float, float]]:
        """``(latency, machine_seconds)`` per move.

        ``dops`` and ``durations`` (raw pipeline durations, before the
        warm-attach term) are listed in DAG order; ``moves`` entries are
        ``(position, new_dop, new_raw_duration)``.  ``state`` is the
        ``(inherited, base_durations)`` pair a preceding
        :meth:`filter_gainful` on the same assignment built.
        """
        attach = self.attach
        provisioning = self.include_provisioning
        consumer = self.consumer
        n = len(self.pids)

        if state is not None:
            inherited, base = state
        else:
            inherited = [0] * n
            for i in range(n):
                c = consumer[i]
                if c is not None:
                    inherited[c] += dops[i]
            base = list(durations)
            if provisioning:
                for i in range(n):
                    if dops[i] > inherited[i]:
                        base[i] += attach

        results: list[tuple[float, float]] = []
        start = [0.0] * n
        finish = [0.0] * n
        topo_pairs = self._topo_pairs
        durs = base  # patched in place per move and restored after
        for moved, new_dop, new_raw in moves:
            saved_moved = durs[moved]
            duration = new_raw
            if provisioning and new_dop > inherited[moved]:
                duration += attach
            durs[moved] = duration
            # The move changes how many nodes the consumer inherits,
            # which can flip the consumer's warm-attach term.
            moved_consumer = consumer[moved]
            if moved_consumer is not None:
                saved_consumer = durs[moved_consumer]
                consumer_inherited = inherited[moved_consumer] - dops[moved] + new_dop
                duration = durations[moved_consumer]
                if provisioning and dops[moved_consumer] > consumer_inherited:
                    duration += attach
                durs[moved_consumer] = duration

            for i, deps in topo_pairs:
                begin = 0.0
                for dep in deps:
                    done = finish[dep]
                    if done > begin:
                        begin = done
                start[i] = begin
                finish[i] = begin + durs[i]

            latency = max(finish) if n else 0.0
            machine_seconds = 0.0
            for i in range(n):
                c = consumer[i]
                if c is not None:
                    waste = start[c] - finish[i]
                    if waste < 0.0:
                        waste = 0.0
                else:
                    waste = 0.0
                dop = new_dop if i == moved else dops[i]
                machine_seconds += dop * (durs[i] + waste)
            results.append((latency, machine_seconds))

            durs[moved] = saved_moved
            if moved_consumer is not None:
                durs[moved_consumer] = saved_consumer
        return results
