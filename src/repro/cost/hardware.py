"""Hardware calibration parameters for the cost models.

The paper: "The model also refers to the relevant hardware parameters
that are calibrated before the service starts."  These constants are the
calibrated per-core/per-node processing rates the scalability models
consume.  Defaults describe the ``standard`` warehouse node; the
``calibrated()`` constructor derives them from a NodeSpec, and tests
exercise alternates.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compute.node import NodeSpec, node_spec
from repro.storage.objectstore import ObjectStoreConfig
from repro.util.units import MB


@dataclass(frozen=True)
class HardwareCalibration:
    """Per-core processing rates and fixed overheads.

    Rates are deliberately round numbers of the right magnitude for
    columnar engines on commodity VMs; experiments depend on ratios and
    shapes, not the absolute values.
    """

    node: NodeSpec = field(default_factory=lambda: node_spec("standard"))
    store: ObjectStoreConfig = field(default_factory=ObjectStoreConfig)

    # CPU-side rates (per core, per second).
    scan_bytes_per_core: float = 150.0 * MB  # decode + decompress
    filter_rows_per_core: float = 50e6
    project_rows_per_core_per_expr: float = 80e6
    hash_build_rows_per_core: float = 8e6
    hash_probe_rows_per_core: float = 12e6
    agg_rows_per_core: float = 10e6
    state_scan_rows_per_core: float = 40e6  # reading materialized state
    sort_rows_per_core: float = 3e6  # at the reference size below
    sort_reference_rows: float = 1e6

    # Memory model.
    hash_table_bytes_per_row: float = 48.0
    hash_memory_fraction: float = 0.6  # usable node memory share for builds
    spill_penalty: float = 3.0  # slowdown multiplier when fully spilling

    # Exchange model (closed form; regression can recalibrate).
    exchange_setup_s: float = 0.05
    exchange_pair_setup_s: float = 0.004  # per peer connection, per node
    broadcast_tree_factor: float = 0.35  # extra hops cost × log2(dop)
    network_efficiency: float = 0.85  # achievable share of NIC bandwidth

    # Scheduling overheads.
    pipeline_startup_s: float = 0.15
    morsel_rows: int = 65_536
    morsel_overhead_s: float = 0.0002
    warm_attach_latency_s: float = 1.5  # acquiring nodes from the warm pool

    @classmethod
    def calibrated(
        cls,
        spec: NodeSpec | str = "standard",
        store: ObjectStoreConfig | None = None,
        **overrides: float,
    ) -> "HardwareCalibration":
        """Calibration for a node spec, with optional per-rate overrides."""
        if isinstance(spec, str):
            spec = node_spec(spec)
        return cls(node=spec, store=store or ObjectStoreConfig(), **overrides)

    # ------------------------------------------------------------------ #
    # Derived node-level rates
    # ------------------------------------------------------------------ #
    @property
    def scan_bytes_per_node(self) -> float:
        """Scan is bounded by CPU decode or the object store's per-node cap."""
        return min(
            self.node.cores * self.scan_bytes_per_core,
            self.store.per_node_bandwidth,
        )

    @property
    def network_bytes_per_node(self) -> float:
        return self.node.network_bandwidth * self.network_efficiency

    @property
    def hash_memory_per_node(self) -> float:
        return self.node.memory_bytes * self.hash_memory_fraction
