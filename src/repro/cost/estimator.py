"""The cost estimator facade: plan + DOPs -> predicted time and dollars.

Bundles the scalability models, exchange calibration, and the query-level
simulator behind one object with the interface the rest of the system
uses (the bi-objective optimizer, the DOP planner, the DOP monitor, and
the What-If Service all "invoke the cost estimator").
"""

from __future__ import annotations

from weakref import WeakKeyDictionary

from repro.cost.estimate import CostEstimate
from repro.cost.hardware import HardwareCalibration
from repro.cost.operator_models import OperatorModels, PipelineTiming
from repro.cost.query_simulator import schedule_timings, simulate_dag
from repro.cost.regression import ExchangeCalibration
from repro.plan.physical import PhysNode, PhysScan, walk_physical
from repro.plan.pipelines import Pipeline, PipelineDag, decompose_pipelines


class CostEstimator:
    """Predicts latency / machine time / dollars for plan fragments.

    ``enable_cache=True`` (the default) memoizes pipeline volumes and
    timings behind :mod:`repro.cost.timing_cache` and per-DAG scan fees;
    results are bit-identical to the uncached path (the flag exists for
    A/B benchmarking and as an escape hatch).
    """

    def __init__(
        self,
        hardware: HardwareCalibration | None = None,
        exchange_calibration: ExchangeCalibration | None = None,
        *,
        price_per_node_second: float | None = None,
        enable_cache: bool = True,
    ) -> None:
        self.hw = hardware or HardwareCalibration()
        self.models = OperatorModels(
            self.hw, exchange_calibration, enable_cache=enable_cache
        )
        self.price_per_node_second = (
            price_per_node_second
            if price_per_node_second is not None
            else self.hw.node.price_per_second
        )
        self._scan_dollars_cache: WeakKeyDictionary[PipelineDag, float] | None = (
            WeakKeyDictionary() if enable_cache else None
        )

    @property
    def cache_enabled(self) -> bool:
        return self.models.cache is not None

    def invalidate_caches(self) -> None:
        """Drop all memoized state (after hardware/model recalibration)."""
        self.models.invalidate_cache()
        if self._scan_dollars_cache is not None:
            self._scan_dollars_cache.clear()

    # ------------------------------------------------------------------ #
    # Main entry points
    # ------------------------------------------------------------------ #
    def estimate_dag(
        self,
        dag: PipelineDag,
        dops: dict[int, int],
        overrides: dict[int, float] | None = None,
    ) -> CostEstimate:
        """Estimate a pipeline DAG under a DOP assignment."""
        estimate = simulate_dag(
            dag,
            dops,
            self.models,
            overrides=overrides,
            price_per_node_second=self.price_per_node_second,
        )
        estimate.scan_request_dollars = self.scan_request_dollars(dag)
        return estimate

    def estimate_schedule(
        self,
        dag: PipelineDag,
        dops: dict[int, int],
        timings: dict[int, PipelineTiming],
    ) -> CostEstimate:
        """Price a DAG from per-pipeline timings already in hand.

        The incremental DOP search computes one new timing per candidate
        move and re-prices with this O(pipelines) call instead of
        :meth:`estimate_dag`.
        """
        estimate = schedule_timings(
            dag,
            dops,
            timings,
            self.models,
            price_per_node_second=self.price_per_node_second,
        )
        estimate.scan_request_dollars = self.scan_request_dollars(dag)
        return estimate

    def pipeline_timing(
        self,
        pipeline: Pipeline,
        dop: int,
        overrides: dict[int, float] | None = None,
    ) -> PipelineTiming:
        """Timing of one pipeline (memoized when caching is enabled)."""
        return self.models.pipeline_timing(pipeline, dop, overrides)

    def estimate_plan(
        self,
        plan: PhysNode,
        dops: dict[int, int] | int,
        overrides: dict[int, float] | None = None,
    ) -> CostEstimate:
        """Estimate a physical plan; ``dops`` may be one uniform DOP."""
        dag = decompose_pipelines(plan)
        if isinstance(dops, int):
            dops = {p.pipeline_id: dops for p in dag}
        return self.estimate_dag(dag, dops, overrides)

    def throughput(self, pipeline, dop: int, overrides=None) -> float:
        """Pipeline throughput T(dop) in source rows/second."""
        return self.models.throughput(pipeline, dop, overrides)

    # ------------------------------------------------------------------ #
    # Secondary cost terms
    # ------------------------------------------------------------------ #
    def scan_request_dollars(self, dag: PipelineDag) -> float:
        """Object-store GET fees for the plan's scans (DOP-independent,
        memoized per DAG when caching is enabled)."""
        if self._scan_dollars_cache is None:
            return self._compute_scan_request_dollars(dag)
        dollars = self._scan_dollars_cache.get(dag)
        if dollars is None:
            dollars = self._compute_scan_request_dollars(dag)
            self._scan_dollars_cache[dag] = dollars
        return dollars

    def _compute_scan_request_dollars(self, dag: PipelineDag) -> float:
        store = self.hw.store
        chunk = 8 * 1024 * 1024  # ranged GETs of 8 MB
        dollars = 0.0
        seen: set[int] = set()
        for pipeline in dag:
            for op in pipeline.ops:
                node = op.node
                if isinstance(node, PhysScan) and node.node_id not in seen:
                    seen.add(node.node_id)
                    gets = max(1.0, node.input_bytes / chunk)
                    dollars += gets * store.price_per_get
        return dollars
