"""The cost estimator facade: plan + DOPs -> predicted time and dollars.

Bundles the scalability models, exchange calibration, and the query-level
simulator behind one object with the interface the rest of the system
uses (the bi-objective optimizer, the DOP planner, the DOP monitor, and
the What-If Service all "invoke the cost estimator").
"""

from __future__ import annotations

from repro.cost.estimate import CostEstimate
from repro.cost.hardware import HardwareCalibration
from repro.cost.operator_models import OperatorModels
from repro.cost.query_simulator import simulate_dag
from repro.cost.regression import ExchangeCalibration
from repro.plan.physical import PhysNode, PhysScan, walk_physical
from repro.plan.pipelines import PipelineDag, decompose_pipelines


class CostEstimator:
    """Predicts latency / machine time / dollars for plan fragments."""

    def __init__(
        self,
        hardware: HardwareCalibration | None = None,
        exchange_calibration: ExchangeCalibration | None = None,
        *,
        price_per_node_second: float | None = None,
    ) -> None:
        self.hw = hardware or HardwareCalibration()
        self.models = OperatorModels(self.hw, exchange_calibration)
        self.price_per_node_second = (
            price_per_node_second
            if price_per_node_second is not None
            else self.hw.node.price_per_second
        )

    # ------------------------------------------------------------------ #
    # Main entry points
    # ------------------------------------------------------------------ #
    def estimate_dag(
        self,
        dag: PipelineDag,
        dops: dict[int, int],
        overrides: dict[int, float] | None = None,
    ) -> CostEstimate:
        """Estimate a pipeline DAG under a DOP assignment."""
        estimate = simulate_dag(
            dag,
            dops,
            self.models,
            overrides=overrides,
            price_per_node_second=self.price_per_node_second,
        )
        estimate.scan_request_dollars = self._scan_request_dollars(dag)
        return estimate

    def estimate_plan(
        self,
        plan: PhysNode,
        dops: dict[int, int] | int,
        overrides: dict[int, float] | None = None,
    ) -> CostEstimate:
        """Estimate a physical plan; ``dops`` may be one uniform DOP."""
        dag = decompose_pipelines(plan)
        if isinstance(dops, int):
            dops = {p.pipeline_id: dops for p in dag}
        return self.estimate_dag(dag, dops, overrides)

    def throughput(self, pipeline, dop: int, overrides=None) -> float:
        """Pipeline throughput T(dop) in source rows/second."""
        return self.models.throughput(pipeline, dop, overrides)

    # ------------------------------------------------------------------ #
    # Secondary cost terms
    # ------------------------------------------------------------------ #
    def _scan_request_dollars(self, dag: PipelineDag) -> float:
        """Object-store GET fees for the plan's scans."""
        store = self.hw.store
        chunk = 8 * 1024 * 1024  # ranged GETs of 8 MB
        dollars = 0.0
        seen: set[int] = set()
        for pipeline in dag:
            for op in pipeline.ops:
                node = op.node
                if isinstance(node, PhysScan) and node.node_id not in seen:
                    seen.add(node.node_id)
                    gets = max(1.0, node.input_bytes / chunk)
                    dollars += gets * store.price_per_get
        return dollars
