"""Per-operator data volumes within a pipeline.

Walks a pipeline's operator chain and derives, for each operator
occurrence, the rows/bytes flowing *into* and *out of* it — honoring
run-time cardinality overrides (true cardinalities observed by the DOP
monitor) and DOP-dependent partial-aggregate output.

Shared by the analytic cost estimator and the discrete-event simulator so
both price exactly the same data movement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import EstimationError
from repro.plan.physical import AggMode, PhysAggregate, PhysNode, PhysScan
from repro.plan.pipelines import (
    Pipeline,
    PipelineOp,
    ROLE_BUILD,
    ROLE_PROBE,
    ROLE_SINK_AGG,
    ROLE_SINK_SORT,
    ROLE_SOURCE_SCAN,
    ROLE_SOURCE_STATE,
    ROLE_STREAM,
)


@dataclass(frozen=True)
class OpVolume:
    """Data flow through one operator occurrence in a pipeline."""

    op: PipelineOp
    rows_in: float
    bytes_in: float
    rows_out: float
    bytes_out: float


def _node_rows(node: PhysNode, overrides: dict[int, float] | None) -> float:
    if overrides is not None and node.node_id in overrides:
        return float(overrides[node.node_id])
    return float(node.est_rows)


def _row_width(node: PhysNode) -> float:
    if node.est_rows > 0:
        return max(1.0, node.est_bytes / node.est_rows)
    return 8.0


def pipeline_volumes(
    pipeline: Pipeline,
    dop: int,
    overrides: dict[int, float] | None = None,
) -> list[OpVolume]:
    """Volumes for each operator of ``pipeline`` at the given DOP.

    ``overrides`` maps plan-node ids to observed true output rows; when a
    node's output is overridden, everything downstream scales accordingly.
    Partial aggregates emit ``min(rows_in, final_groups * dop)`` — the
    one place where volume itself depends on parallelism.
    """
    if dop < 1:
        raise EstimationError(f"dop must be >= 1, got {dop}")
    volumes: list[OpVolume] = []
    rows = 0.0
    nbytes = 0.0
    for index, op in enumerate(pipeline.ops):
        node = op.node
        role = op.role
        if role == ROLE_SOURCE_SCAN:
            assert isinstance(node, PhysScan)
            rows_out = _node_rows(node, overrides)
            width = _row_width(node)
            volume = OpVolume(
                op=op,
                rows_in=float(node.input_rows),
                bytes_in=float(node.input_bytes),
                rows_out=rows_out,
                bytes_out=rows_out * width,
            )
        elif role == ROLE_SOURCE_STATE:
            rows_out = _node_rows(node, overrides)
            width = _row_width(node)
            volume = OpVolume(
                op=op,
                rows_in=rows_out,
                bytes_in=rows_out * width,
                rows_out=rows_out,
                bytes_out=rows_out * width,
            )
        elif role in (ROLE_BUILD, ROLE_SINK_AGG, ROLE_SINK_SORT):
            # Sinks consume the stream; their materialized output is read
            # by the consumer pipeline via ROLE_SOURCE_STATE / ROLE_PROBE.
            volume = OpVolume(
                op=op, rows_in=rows, bytes_in=nbytes, rows_out=0.0, bytes_out=0.0
            )
        elif role == ROLE_PROBE:
            rows_out = _node_rows(node, overrides)
            width = _row_width(node)
            # Scale join output with the observed probe input when the
            # plan-time probe estimate was off.
            expected_in = _expected_stream_rows(pipeline, index)
            if expected_in > 0 and overrides is not None:
                rows_out *= rows / expected_in
            volume = OpVolume(
                op=op,
                rows_in=rows,
                bytes_in=nbytes,
                rows_out=rows_out,
                bytes_out=rows_out * width,
            )
        elif role == ROLE_STREAM:
            if isinstance(node, PhysAggregate) and node.mode is AggMode.PARTIAL:
                groups = _final_groups(pipeline, index, overrides)
                rows_out = min(rows, groups * dop)
                width = _row_width(node)
            else:
                expected_in = _expected_stream_rows(pipeline, index)
                rows_out = _node_rows(node, overrides)
                width = _row_width(node)
                if overrides is not None and expected_in > 0:
                    if node.node_id not in overrides:
                        # No direct observation: keep the operator's
                        # estimated selectivity, applied to observed input.
                        selectivity = min(1.0, node.est_rows / expected_in)
                        rows_out = rows * selectivity
            volume = OpVolume(
                op=op,
                rows_in=rows,
                bytes_in=nbytes,
                rows_out=rows_out,
                bytes_out=rows_out * width,
            )
        else:
            raise EstimationError(f"unknown pipeline role {role!r}")
        volumes.append(volume)
        rows, nbytes = volume.rows_out, volume.bytes_out
    return volumes


def _expected_stream_rows(pipeline: Pipeline, index: int) -> float:
    """Plan-time estimate of the stream entering op ``index``."""
    if index == 0:
        return 0.0
    prev = pipeline.ops[index - 1].node
    return float(prev.est_rows)


def _final_groups(
    pipeline: Pipeline, partial_index: int, overrides: dict[int, float] | None
) -> float:
    """Group count of the FINAL/SINGLE aggregate downstream of a partial."""
    for op in pipeline.ops[partial_index + 1 :]:
        node = op.node
        if isinstance(node, PhysAggregate) and node.mode is not AggMode.PARTIAL:
            return _node_rows(node, overrides)
    # Partial aggregate whose final phase lives in the consumer pipeline
    # (global aggregation): fall back to its own estimate.
    return float(pipeline.ops[partial_index].node.est_rows)


def pipeline_output(
    pipeline: Pipeline, dop: int, overrides: dict[int, float] | None = None
) -> OpVolume:
    """Volume record of the pipeline's last operator."""
    volumes = pipeline_volumes(pipeline, dop, overrides)
    return volumes[-1]
