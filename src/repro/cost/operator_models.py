"""Per-operator scalability models (paper §3.1).

"For each physical operator, we design a scalability model that outputs
its processing throughput given the data size and the degree of
parallelism."  Simple closed-form formulas for CPU-bound operators;
network-bound exchanges use a linear model whose coefficients can be
recalibrated by regression on synthetic workloads
(:mod:`repro.cost.regression`).

A pipeline executes its operators concurrently (streaming), so pipeline
duration = max of per-operator stream times + accumulated fixed
overheads (setup costs that do not overlap with streaming).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cost.hardware import HardwareCalibration
from repro.cost.regression import ExchangeCalibration
from repro.cost.timing_cache import TimingCache
from repro.cost.volumes import OpVolume, pipeline_volumes
from repro.errors import EstimationError
from repro.plan.physical import (
    ExchangeKind,
    PhysExchange,
    PhysFilter,
    PhysLimit,
    PhysProject,
    PhysSort,
)
from repro.plan.pipelines import (
    Pipeline,
    ROLE_BUILD,
    ROLE_PROBE,
    ROLE_SINK_AGG,
    ROLE_SINK_SORT,
    ROLE_SOURCE_SCAN,
    ROLE_SOURCE_STATE,
    ROLE_STREAM,
)


@dataclass(frozen=True)
class OpTime:
    """Streaming time (overlaps with the rest of the pipeline) plus fixed
    setup time (serializes with everything)."""

    stream_s: float
    fixed_s: float
    label: str


@dataclass
class PipelineTiming:
    """Predicted duration of one pipeline at one DOP."""

    duration: float
    bottleneck: str
    op_times: list[OpTime]
    source_rows: float


class OperatorModels:
    """Evaluates operator and pipeline times from volumes and DOP."""

    def __init__(
        self,
        hardware: HardwareCalibration | None = None,
        exchange_calibration: ExchangeCalibration | None = None,
        *,
        enable_cache: bool = True,
    ) -> None:
        self.hw = hardware or HardwareCalibration()
        self.exchange = exchange_calibration or ExchangeCalibration.analytic(self.hw)
        self.cache: TimingCache | None = TimingCache() if enable_cache else None
        #: Count of actual timing-model evaluations (cache misses when the
        #: cache is on, every call when it is off) — the benchmark metric.
        self.timing_computations = 0

    # ------------------------------------------------------------------ #
    # Pipeline-level API
    # ------------------------------------------------------------------ #
    def pipeline_timing(
        self,
        pipeline: Pipeline,
        dop: int,
        overrides: dict[int, float] | None = None,
    ) -> PipelineTiming:
        """Duration of ``pipeline`` at ``dop`` (streaming bottleneck model).

        Memoized per ``(pipeline, dop, overrides)`` when the timing cache
        is enabled; the cached object is shared, treat it as read-only.
        """
        if self.cache is None:
            return self._compute_timing(pipeline, dop, overrides)
        return self.cache.timing(pipeline, dop, overrides, self._compute_timing)

    def invalidate_cache(self) -> None:
        """Drop memoized volumes/timings (after model recalibration)."""
        if self.cache is not None:
            self.cache.invalidate()

    def _compute_timing(
        self,
        pipeline: Pipeline,
        dop: int,
        overrides: dict[int, float] | None,
    ) -> PipelineTiming:
        self.timing_computations += 1
        if self.cache is not None:
            volumes = self.cache.volumes(pipeline, dop, overrides)
        else:
            volumes = pipeline_volumes(pipeline, dop, overrides)
        op_times = [
            self.op_time(volume, dop, pipeline=pipeline, index=i)
            for i, volume in enumerate(volumes)
        ]
        stream = max((t.stream_s for t in op_times), default=0.0)
        fixed = sum(t.fixed_s for t in op_times) + self.hw.pipeline_startup_s
        bottleneck = ""
        if op_times:
            bottleneck = max(op_times, key=lambda t: t.stream_s).label
        source_rows = volumes[0].rows_out if volumes else 0.0
        return PipelineTiming(
            duration=stream + fixed,
            bottleneck=bottleneck,
            op_times=op_times,
            source_rows=source_rows,
        )

    def throughput(
        self,
        pipeline: Pipeline,
        dop: int,
        overrides: dict[int, float] | None = None,
    ) -> float:
        """Source-rows-per-second throughput T(dop) of a pipeline.

        This is the throughput function the co-finish heuristic plugs
        into C1/T1(DOP1) ≈ C2/T2(DOP2) (§3.2).
        """
        timing = self.pipeline_timing(pipeline, dop, overrides)
        if timing.duration <= 0:
            return float("inf")
        return max(timing.source_rows, 1.0) / timing.duration

    # ------------------------------------------------------------------ #
    # Per-operator models
    # ------------------------------------------------------------------ #
    def op_time(
        self,
        volume: OpVolume,
        dop: int,
        *,
        pipeline: Pipeline | None = None,
        index: int | None = None,
    ) -> OpTime:
        role = volume.op.role
        node = volume.op.node
        hw = self.hw
        cores = hw.node.cores
        # The label is pure presentation but op_time runs once per
        # (operator, DOP) probed by the DOP search; cache it per node so
        # describe() is not re-rendered for every DOP.
        labels = node.__dict__.get("_op_labels")
        if labels is None:
            labels = {}
            node.__dict__["_op_labels"] = labels
        label = labels.get(role)
        if label is None:
            label = f"{node.describe()}[{role}]"
            labels[role] = label

        if role == ROLE_SOURCE_SCAN:
            scan_s = volume.bytes_in / (dop * hw.scan_bytes_per_node)
            morsels = volume.rows_in / hw.morsel_rows
            sched_s = morsels * hw.morsel_overhead_s / (dop * cores)
            return OpTime(scan_s + sched_s, hw.store.request_latency_s, label)

        if role == ROLE_SOURCE_STATE:
            rate = dop * cores * hw.state_scan_rows_per_core
            return OpTime(volume.rows_out / rate, 0.0, label)

        if role == ROLE_STREAM:
            return self._stream_time(volume, dop, label)

        if role == ROLE_BUILD:
            rate = dop * cores * hw.hash_build_rows_per_core
            build_s = volume.rows_in / rate
            build_s *= self._spill_multiplier(volume, dop, pipeline, index)
            return OpTime(build_s, 0.0, label)

        if role == ROLE_PROBE:
            rate = dop * cores * hw.hash_probe_rows_per_core
            return OpTime(volume.rows_in / rate, 0.0, label)

        if role == ROLE_SINK_AGG:
            rate = dop * cores * hw.agg_rows_per_core
            return OpTime(volume.rows_in / rate, 0.0, label)

        if role == ROLE_SINK_SORT:
            per_node_rows = max(2.0, volume.rows_in / dop)
            log_ref = math.log2(max(2.0, hw.sort_reference_rows))
            rate = cores * hw.sort_rows_per_core * log_ref / math.log2(per_node_rows)
            return OpTime(per_node_rows / rate, 0.0, label)

        raise EstimationError(f"no model for pipeline role {role!r}")

    def _stream_time(self, volume: OpVolume, dop: int, label: str) -> OpTime:
        node = volume.op.node
        hw = self.hw
        cores = hw.node.cores
        if isinstance(node, PhysExchange):
            return self._exchange_time(node.kind, volume, dop, label)
        if isinstance(node, PhysFilter):
            rate = dop * cores * hw.filter_rows_per_core
            return OpTime(volume.rows_in / rate, 0.0, label)
        if isinstance(node, PhysProject):
            exprs = max(1, len(node.exprs))
            rate = dop * cores * hw.project_rows_per_core_per_expr / exprs
            return OpTime(volume.rows_in / rate, 0.0, label)
        if isinstance(node, PhysLimit):
            return OpTime(0.0, 0.0, label)
        # Streaming (partial) aggregate and anything aggregate-like.
        rate = dop * cores * hw.agg_rows_per_core
        return OpTime(volume.rows_in / rate, 0.0, label)

    def _exchange_time(
        self, kind: ExchangeKind, volume: OpVolume, dop: int, label: str
    ) -> OpTime:
        hw = self.hw
        coeffs = self.exchange.coefficients(kind)
        if kind is ExchangeKind.SHUFFLE:
            moved = volume.bytes_in * (dop - 1) / dop if dop > 1 else 0.0
            transfer = moved / (dop * hw.network_bytes_per_node)
        elif kind is ExchangeKind.BROADCAST:
            hops = 1.0 + hw.broadcast_tree_factor * math.log2(max(1, dop))
            transfer = volume.bytes_in * hops / hw.network_bytes_per_node
        elif kind is ExchangeKind.GATHER:
            transfer = volume.bytes_in / hw.network_bytes_per_node
        else:  # pragma: no cover - exhaustive over enum
            raise EstimationError(f"unknown exchange kind {kind}")
        stream = coeffs.transfer_scale * transfer
        fixed = coeffs.base_setup_s + coeffs.per_peer_setup_s * max(0, dop - 1)
        return OpTime(stream, fixed, label)

    def _spill_multiplier(
        self,
        volume: OpVolume,
        dop: int,
        pipeline: Pipeline | None,
        index: int | None,
    ) -> float:
        """Penalty when the hash build exceeds usable memory.

        A broadcast build is replicated on every node; a partitioned
        build is split across the DOP.
        """
        hw = self.hw
        table_bytes = volume.bytes_in + volume.rows_in * hw.hash_table_bytes_per_row
        broadcast = False
        if pipeline is not None and index is not None:
            broadcast = any(
                isinstance(op.node, PhysExchange)
                and op.node.kind is ExchangeKind.BROADCAST
                for op in pipeline.ops[:index]
            )
        per_node = table_bytes if broadcast else table_bytes / dop
        budget = hw.hash_memory_per_node
        if per_node <= budget or per_node <= 0:
            return 1.0
        overflow = (per_node - budget) / per_node
        return 1.0 + hw.spill_penalty * overflow
