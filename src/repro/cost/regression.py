"""Regression-calibrated exchange models (paper §3.1).

"To improve the prediction accuracy for more complex operators (typically
involve data exchange between nodes), we pre-train regression models for
them with synthetic workloads that cover the parameter space."

The model stays explainable: for each exchange kind we fit three
coefficients by ordinary least squares on synthetic (bytes, dop, time)
measurements —

    time ≈ transfer_scale * analytic_transfer(bytes, dop)
           + base_setup_s + per_peer_setup_s * (dop - 1)

``analytic_transfer`` is the closed-form network term; the fitted scale
absorbs protocol inefficiency and the setup terms absorb coordination
cost.  Training data comes from the discrete-event simulator (in lieu of
the paper's real clusters).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

from repro.errors import EstimationError
from repro.plan.physical import ExchangeKind


@dataclass(frozen=True)
class ExchangeCoefficients:
    """Fitted linear model for one exchange kind."""

    transfer_scale: float = 1.0
    base_setup_s: float = 0.05
    per_peer_setup_s: float = 0.004

    def __post_init__(self) -> None:
        if self.transfer_scale <= 0:
            raise EstimationError("transfer_scale must be positive")


@dataclass(frozen=True)
class ExchangeCalibration:
    """Coefficients per exchange kind."""

    by_kind: dict[ExchangeKind, ExchangeCoefficients] = field(default_factory=dict)

    def coefficients(self, kind: ExchangeKind) -> ExchangeCoefficients:
        return self.by_kind.get(kind, ExchangeCoefficients())

    @classmethod
    def analytic(cls, hardware) -> "ExchangeCalibration":
        """Uncalibrated defaults taken straight from hardware constants."""
        coeffs = ExchangeCoefficients(
            transfer_scale=1.0,
            base_setup_s=hardware.exchange_setup_s,
            per_peer_setup_s=hardware.exchange_pair_setup_s,
        )
        return cls(by_kind={kind: coeffs for kind in ExchangeKind})


@dataclass(frozen=True)
class ExchangeSample:
    """One synthetic measurement: moving ``bytes`` at ``dop`` took ``seconds``."""

    kind: ExchangeKind
    payload_bytes: float
    dop: int
    seconds: float


def analytic_transfer_seconds(
    kind: ExchangeKind,
    payload_bytes: float,
    dop: int,
    network_bytes_per_node: float,
    broadcast_tree_factor: float,
) -> float:
    """Closed-form network transfer time (no setup terms)."""
    if kind is ExchangeKind.SHUFFLE:
        moved = payload_bytes * (dop - 1) / dop if dop > 1 else 0.0
        return moved / (dop * network_bytes_per_node)
    if kind is ExchangeKind.BROADCAST:
        hops = 1.0 + broadcast_tree_factor * math.log2(max(1, dop))
        return payload_bytes * hops / network_bytes_per_node
    if kind is ExchangeKind.GATHER:
        return payload_bytes / network_bytes_per_node
    raise EstimationError(f"unknown exchange kind {kind}")


def fit_exchange_coefficients(
    samples: list[ExchangeSample],
    network_bytes_per_node: float,
    broadcast_tree_factor: float,
) -> ExchangeCoefficients:
    """Least-squares fit of the three-coefficient model for one kind."""
    if len(samples) < 3:
        raise EstimationError(f"need >= 3 samples to fit, got {len(samples)}")
    kinds = {s.kind for s in samples}
    if len(kinds) != 1:
        raise EstimationError(f"samples mix exchange kinds: {kinds}")
    kind = samples[0].kind
    design = np.zeros((len(samples), 3))
    target = np.zeros(len(samples))
    for row, sample in enumerate(samples):
        design[row, 0] = analytic_transfer_seconds(
            kind,
            sample.payload_bytes,
            sample.dop,
            network_bytes_per_node,
            broadcast_tree_factor,
        )
        design[row, 1] = 1.0
        design[row, 2] = max(0, sample.dop - 1)
        target[row] = sample.seconds
    solution, *_ = np.linalg.lstsq(design, target, rcond=None)
    scale, base, per_peer = solution
    # Clamp to physically meaningful values: negative setups mean the
    # analytic term over-explains; fold the residual into the scale.
    return ExchangeCoefficients(
        transfer_scale=max(0.05, float(scale)),
        base_setup_s=max(0.0, float(base)),
        per_peer_setup_s=max(0.0, float(per_peer)),
    )


MeasureFn = Callable[[ExchangeKind, float, int], float]


def calibrate_exchange(
    measure: MeasureFn,
    *,
    hardware,
    payload_grid: Iterable[float] = (8e6, 64e6, 256e6, 1e9),
    dop_grid: Iterable[int] = (1, 2, 4, 8, 16, 32),
    kinds: Iterable[ExchangeKind] = tuple(ExchangeKind),
) -> ExchangeCalibration:
    """Pre-train exchange models on a synthetic parameter sweep.

    ``measure(kind, payload_bytes, dop)`` must return observed seconds —
    in this repo that is the discrete-event simulator's exchange
    micro-benchmark (:func:`repro.sim.distsim.measure_exchange`).
    """
    by_kind: dict[ExchangeKind, ExchangeCoefficients] = {}
    for kind in kinds:
        samples = [
            ExchangeSample(kind, payload, dop, measure(kind, payload, dop))
            for payload in payload_grid
            for dop in dop_grid
        ]
        by_kind[kind] = fit_exchange_coefficients(
            samples,
            hardware.network_bytes_per_node,
            hardware.broadcast_tree_factor,
        )
    return ExchangeCalibration(by_kind=by_kind)
