"""Memoization for the estimator hot path.

Profiling the DOP search shows ~80% of optimize time inside
:func:`~repro.cost.operator_models.OperatorModels.pipeline_timing`, and
most of those calls recompute results already produced earlier in the
same greedy search: the search mutates one pipeline's DOP per move, yet
every candidate evaluation re-times every pipeline.

Two observations make the path cacheable:

- :func:`~repro.cost.volumes.pipeline_volumes` is DOP-independent for
  any pipeline without a partial (DOP-scaled) aggregate, so its result
  can be shared across the whole DOP grid;
- ``pipeline_timing`` is a pure function of ``(pipeline, dop,
  overrides)``, so it can be memoized per pipeline object.

Cached entries are keyed *by pipeline identity* in weak dictionaries:
pipelines die with their plan, and the cache entries follow — no
explicit lifetime management, no unbounded growth across queries.
Results are shared objects; every consumer in the repo treats
``PipelineTiming``/``OpVolume`` as read-only.

Cardinality overrides are *projected per pipeline* before keying: the
volume model only ever reads override entries for the pipeline's own
plan nodes (plus whether a mapping was passed at all, which switches
un-overridden operators into observed-selectivity mode), so two
override mappings that agree on this pipeline's nodes are the same
computation.  Without the projection, a DOP monitor that learns one
node-local truth would miss the cache for *every* pipeline in the plan;
with it, only the pipeline that owns the overridden node re-times.

Correctness contract (enforced by the parity suite in
``tests/cost/test_estimation_parity.py``): the cache returns objects
produced by exactly the same computation the uncached path runs, so
estimates are bit-identical with caching on or off.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable
from weakref import WeakKeyDictionary

from repro.cost.volumes import OpVolume, pipeline_volumes
from repro.plan.physical import AggMode, PhysAggregate
from repro.plan.pipelines import Pipeline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from repro.cost.operator_models import PipelineTiming


def overrides_key(overrides: dict[int, float] | None) -> tuple | None:
    """Hashable identity of a cardinality-overrides mapping.

    ``None`` and ``{}`` are deliberately distinct: passing any mapping —
    even an empty one — switches :func:`pipeline_volumes` into
    observed-selectivity mode for un-overridden operators.
    """
    if overrides is None:
        return None
    return tuple(sorted(overrides.items()))


def volumes_depend_on_dop(pipeline: Pipeline) -> bool:
    """True when the pipeline's volumes change with DOP.

    The only DOP-dependent volume is a partial aggregate's output
    (``min(rows_in, final_groups * dop)``); everything else is pure data
    flow.
    """
    return any(
        isinstance(op.node, PhysAggregate) and op.node.mode is AggMode.PARTIAL
        for op in pipeline.ops
    )


@dataclass
class TimingCacheStats:
    """Hit/miss counters (the throughput benchmark reads these)."""

    volume_hits: int = 0
    volume_computations: int = 0
    timing_hits: int = 0
    timing_computations: int = 0

    def reset(self) -> None:
        self.volume_hits = 0
        self.volume_computations = 0
        self.timing_hits = 0
        self.timing_computations = 0

    def describe(self) -> str:
        return (
            f"timings: {self.timing_hits} hits / "
            f"{self.timing_computations} computed; "
            f"volumes: {self.volume_hits} hits / "
            f"{self.volume_computations} computed"
        )


class TimingCache:
    """Per-pipeline memo of volumes and timings.

    Owned by one :class:`~repro.cost.operator_models.OperatorModels`; all
    of that estimator's callers (DOP planner, co-finish polish, DOP
    monitor, What-If Service) share it automatically.
    """

    def __init__(self) -> None:
        # pipeline -> {(dop-or-0, overrides_key): [OpVolume, ...]}
        self._volumes: WeakKeyDictionary[Pipeline, dict] = WeakKeyDictionary()
        # pipeline -> {(dop, overrides_key): PipelineTiming}
        self._timings: WeakKeyDictionary[Pipeline, dict] = WeakKeyDictionary()
        # pipeline -> whether volumes depend on DOP (partial aggregates)
        self._dop_sensitive: WeakKeyDictionary[Pipeline, bool] = WeakKeyDictionary()
        # pipeline -> its plan-node ids (for override projection)
        self._node_ids: WeakKeyDictionary[Pipeline, frozenset] = WeakKeyDictionary()
        self.stats = TimingCacheStats()

    def _project_overrides(
        self, pipeline: Pipeline, overrides: dict[int, float] | None
    ) -> dict[int, float] | None:
        """Restrict overrides to the pipeline's own plan nodes.

        Safe because :func:`pipeline_volumes` reads overrides only at
        this pipeline's node ids; ``None`` stays ``None`` and a non-empty
        mapping may project to ``{}`` (both distinctions matter — any
        mapping enables observed-selectivity mode).  Projection widens
        key sharing: a node-local truth learned by the DOP monitor no
        longer fragments every *other* pipeline's cache slots.
        """
        if overrides is None:
            return None
        node_ids = self._node_ids.get(pipeline)
        if node_ids is None:
            node_ids = frozenset(op.node.node_id for op in pipeline.ops)
            self._node_ids[pipeline] = node_ids
        if all(node_id in node_ids for node_id in overrides):
            return overrides
        return {
            node_id: rows
            for node_id, rows in overrides.items()
            if node_id in node_ids
        }

    # ------------------------------------------------------------------ #
    # Lookups
    # ------------------------------------------------------------------ #
    def volumes(
        self,
        pipeline: Pipeline,
        dop: int,
        overrides: dict[int, float] | None,
    ) -> list[OpVolume]:
        """Cached :func:`pipeline_volumes`; DOP enters the key only for
        pipelines whose volumes actually depend on it, and overrides
        only through their projection onto this pipeline's nodes."""
        sensitive = self._dop_sensitive.get(pipeline)
        if sensitive is None:
            sensitive = volumes_depend_on_dop(pipeline)
            self._dop_sensitive[pipeline] = sensitive
        overrides = self._project_overrides(pipeline, overrides)
        key = (dop if sensitive else 0, overrides_key(overrides))
        per_pipeline = self._volumes.get(pipeline)
        if per_pipeline is None:
            per_pipeline = {}
            self._volumes[pipeline] = per_pipeline
        found = per_pipeline.get(key)
        if found is None:
            self.stats.volume_computations += 1
            found = pipeline_volumes(pipeline, dop, overrides)
            per_pipeline[key] = found
        else:
            self.stats.volume_hits += 1
        return found

    def timing(
        self,
        pipeline: Pipeline,
        dop: int,
        overrides: dict[int, float] | None,
        compute: Callable[[Pipeline, int, dict[int, float] | None], "PipelineTiming"],
    ) -> "PipelineTiming":
        """Memoized pipeline timing; ``compute`` runs on a miss."""
        overrides = self._project_overrides(pipeline, overrides)
        key = (dop, overrides_key(overrides))
        per_pipeline = self._timings.get(pipeline)
        if per_pipeline is None:
            per_pipeline = {}
            self._timings[pipeline] = per_pipeline
        found = per_pipeline.get(key)
        if found is None:
            self.stats.timing_computations += 1
            found = compute(pipeline, dop, overrides)
            per_pipeline[key] = found
        else:
            self.stats.timing_hits += 1
        return found

    # ------------------------------------------------------------------ #
    # Maintenance
    # ------------------------------------------------------------------ #
    def invalidate(self) -> None:
        """Drop every cached entry (call after recalibrating hardware or
        exchange coefficients — anything that changes the timing model)."""
        self._volumes.clear()
        self._timings.clear()
        self._dop_sensitive.clear()
        self._node_ids.clear()

    def __len__(self) -> int:
        return sum(len(v) for v in self._timings.values())
