"""Cost estimator (paper §3.1): per-operator scalability models + a
lightweight query-level simulator.

The estimator is "the center of the architecture ... a referee that ranks
different execution proposals".  Given a pipeline DAG, DOP assignments,
and hardware calibration, it predicts query latency, total machine time,
and monetary cost — accurately enough to plan with, cheaply enough to be
invoked thousands of times per optimization, and explainably (closed-form
formulas plus least-squares-calibrated exchange corrections; no black-box
models).
"""

from repro.cost.hardware import HardwareCalibration
from repro.cost.estimate import CostEstimate, PipelineCost
from repro.cost.estimator import CostEstimator
from repro.cost.operator_models import OperatorModels
from repro.cost.regression import ExchangeCalibration, calibrate_exchange

__all__ = [
    "HardwareCalibration",
    "CostEstimate",
    "PipelineCost",
    "CostEstimator",
    "OperatorModels",
    "ExchangeCalibration",
    "calibrate_exchange",
]
