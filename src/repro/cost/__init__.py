"""Cost estimator (paper §3.1): per-operator scalability models + a
lightweight query-level simulator.

The estimator is "the center of the architecture ... a referee that ranks
different execution proposals".  Given a pipeline DAG, DOP assignments,
and hardware calibration, it predicts query latency, total machine time,
and monetary cost — accurately enough to plan with, cheaply enough to be
invoked thousands of times per optimization, and explainably (closed-form
formulas plus least-squares-calibrated exchange corrections; no black-box
models).

Caching architecture (the optimizer hot path)
---------------------------------------------

"Invoked thousands of times per optimization" made the estimator the
optimize-time bottleneck (~80% of wall time), so estimation is layered
as cache-friendly pure functions with memoization at three levels:

- **volumes** (:mod:`repro.cost.volumes`): per-operator data flow.
  DOP-independent except for partial aggregates, so one computation
  serves the whole DOP grid.  Cached per ``(pipeline, overrides)`` —
  plus ``dop`` only for DOP-sensitive pipelines.
- **timings** (:mod:`repro.cost.operator_models` behind
  :mod:`repro.cost.timing_cache`): pure in ``(pipeline, dop,
  overrides)``; memoized in weak per-pipeline dictionaries so entries
  die with their plan.  The DOP planner's incremental coster then
  re-times only the pipeline a candidate move changed, and its batched
  greedy rounds price a whole round of candidate moves with one lean
  :class:`repro.cost.query_simulator.ScheduleSweeper` pass (plus a
  critical-path prune that skips candidates provably unable to reduce
  latency) instead of per-candidate full schedules.
- **DAG planning** (:mod:`repro.core.bioptimizer`): join-tree variants,
  physical plans, and pipeline decompositions are memoized per bound
  query (weakly) — the user constraint never enters DAG planning, so a
  second constraint on the same query re-runs only the DOP search.
- **plans** (:mod:`repro.core.plan_cache`): the serving layer is a
  *two-level* cache.  The exact level memoizes whole ``PlanChoice``s
  keyed on (normalized SQL token stream, constraint, catalog stats
  version).  The skeleton level keys the template's *plan skeleton* —
  the DP-chosen join tree plus bushy variant shapes — on the
  literal-free template key
  (:func:`repro.sql.parameterize.parameterize_sql`), the constraint
  kind, and the stats version, so literal-varying report traffic skips
  join-order DP and bushy generation and re-runs only constant binding
  (itself served from a per-template AST cache), cardinality
  re-estimation, and the incremental DOP search.  A binding cache
  (normalized SQL -> bound query) makes the second constraint on one
  arrival share binding, the DAG memo, and all pipeline timings.

Invalidation: cached volumes/timings key on the cardinality-overrides
mapping, so new observations never see stale numbers; catalog mutations
bump ``Catalog.version``, which invalidates exact, skeleton, and
binding entries by construction; ``CostEstimator.invalidate_caches()``
handles the one out-of-band case (hardware/exchange recalibration).
Caching is bit-identical to the uncached path — enforced by
``tests/cost/test_estimation_parity.py`` (including literal-varying
skeleton reuse and batched-vs-per-candidate DOP rounds) and the A/B
guard in ``benchmarks/bench_optimizer_throughput.py``.
``CostIntelligentWarehouse.describe_caches()`` reports hit rates across
every level.
"""

from repro.cost.hardware import HardwareCalibration
from repro.cost.estimate import CostEstimate, PipelineCost
from repro.cost.estimator import CostEstimator
from repro.cost.operator_models import OperatorModels
from repro.cost.regression import ExchangeCalibration, calibrate_exchange
from repro.cost.timing_cache import TimingCache

__all__ = [
    "HardwareCalibration",
    "CostEstimate",
    "PipelineCost",
    "CostEstimator",
    "OperatorModels",
    "ExchangeCalibration",
    "TimingCache",
    "calibrate_exchange",
]
