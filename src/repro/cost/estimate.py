"""Cost estimate result types."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PipelineCost:
    """Predicted execution profile of one pipeline."""

    pipeline_id: int
    dop: int
    start: float
    duration: float
    waste: float
    """Idle-but-billed node time span after finishing, waiting for the
    consumer pipeline to start (the co-finish heuristic minimizes this)."""
    bottleneck: str = ""
    source_rows: float = 0.0

    @property
    def finish(self) -> float:
        return self.start + self.duration

    @property
    def machine_seconds(self) -> float:
        return self.dop * (self.duration + self.waste)


@dataclass
class CostEstimate:
    """Predicted latency and monetary cost of one plan + DOP assignment.

    ``dollars`` prices raw machine time (the estimator's view); the
    simulator's billing meter layers lease minimums and resize overheads
    on top of the same accounting.
    """

    latency: float
    machine_seconds: float
    dollars: float
    pipelines: dict[int, PipelineCost] = field(default_factory=dict)
    scan_request_dollars: float = 0.0

    @property
    def total_dollars(self) -> float:
        return self.dollars + self.scan_request_dollars

    @property
    def total_waste_seconds(self) -> float:
        return sum(p.dop * p.waste for p in self.pipelines.values())

    def describe(self) -> str:
        from repro.util.units import fmt_dollars, fmt_duration

        lines = [
            f"latency={fmt_duration(self.latency)} "
            f"machine={fmt_duration(self.machine_seconds)} "
            f"cost={fmt_dollars(self.total_dollars)}"
        ]
        for pid in sorted(self.pipelines):
            p = self.pipelines[pid]
            lines.append(
                f"  P{pid}: dop={p.dop} start={p.start:.2f}s "
                f"dur={p.duration:.2f}s waste={p.waste:.2f}s "
                f"bottleneck={p.bottleneck}"
            )
        return "\n".join(lines)
