"""Deterministic fault injection: named fault points + seeded schedules.

The resilience layer (:mod:`repro.core.resilience`) is only testable if
failure is a *reproducible input*: the chaos suite must be able to
replay "statsvc dies on its 3rd call, optimize sees a 2s latency spike
on invocation 7" byte-for-byte.  A :class:`FaultPlan` provides that: for
each named fault point, whether invocation *n* fails (and/or suffers a
virtual latency spike) is a pure function of ``(seed, point, n)``, drawn
from a per-point :func:`~repro.util.rng.derive_rng` stream.  Per-point
invocation counters are atomic, so the *schedule at each point* is
deterministic even when serving threads interleave arbitrarily — the
chaos invariants (ordered finalize, exactly-once billing, typed-error-
or-degraded outcomes) must hold for every interleaving anyway.

Fault points (:data:`FAULT_POINTS`):

- ``bind`` / ``optimize`` / ``simulate`` — the serving stages, guarded
  by :class:`~repro.core.resilience.StageGuard`.
- ``statsvc`` — the Statistics Service forecast refresh feeding
  cost-aware retention (guarded by the statsvc circuit breaker).
- ``tuning_apply`` — background-compute action execution (guarded by
  the tuning circuit breaker).
- ``worker_crash`` — a planner worker *process* dies at a dispatch
  boundary.  Drawn by the coordinator's
  :class:`~repro.core.sharding.PlannerWorkerPool` once per task send,
  in submission order, so the schedule is deterministic regardless of
  worker timing; the pool restarts the worker warm and re-stages its
  in-flight tasks (exactly-once billing is the coordinator's job, so a
  re-stage never double-bills).

Crash points (:data:`CRASH_POINTS`) model *process death* at the
write-ahead-journal record boundaries (see :mod:`repro.core.journal`):

- ``crash_pre_write`` — before a journal record is appended (nothing
  durable, nothing applied);
- ``crash_post_write`` — after the append but before the in-memory
  state mutation it describes (durable, not applied — redo replays it);
- ``crash_pre_commit`` — a tuning apply/rollback died after mutating
  the catalog but before its commit record landed (the in-doubt window
  recovery must resolve via the journaled undo snapshot).

A firing crash point raises :class:`SimulatedCrashError`, which derives
from ``BaseException`` so no serving-layer ``except Exception`` handler
can swallow it — exactly like ``SIGKILL``, it unwinds straight out to
the test driver.  Use :func:`kill` to build a one-shot crash spec.

Latency is *virtual*: a spike charges the request/stage deadlines
without sleeping, so chaos runs are fast and host-speed independent.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.errors import ReproError, TransientError
from repro.util.rng import derive_rng

#: Every named fault point the serving/tuning/statsvc paths expose.
FAULT_POINTS = (
    "bind",
    "optimize",
    "simulate",
    "statsvc",
    "tuning_apply",
    "worker_crash",
)

#: Kill points at write-ahead-journal record boundaries (only drawn
#: when a journal is attached to the warehouse).  Kept separate from
#: :data:`FAULT_POINTS`: crash faults are not retryable stage failures,
#: they are process death.
CRASH_POINTS = ("crash_pre_write", "crash_post_write", "crash_pre_commit")


class SimulatedCrashError(BaseException):
    """Deterministic stand-in for process death (kill -9 at a journal
    boundary).

    Deliberately a ``BaseException``: every ``except Exception`` handler
    on the serving/tuning paths (retry loops, handle-failure carriers,
    the scheduler) must let it through, because a real crash gives no
    handler a chance to run.  The chaos driver catches it, then recovers
    a fresh warehouse from the journal.
    """

    def __init__(self, message: str, *, point: str, invocation: int) -> None:
        super().__init__(message)
        self.point = point
        self.invocation = invocation


class InjectedFault(TransientError):
    """The default injected failure — transient, so retry policies see it.

    Carries the fault point and the invocation index that fired, so
    chaos assertions can trace every surfaced error back to the
    schedule entry that caused it.
    """

    def __init__(self, message: str, *, point: str, invocation: int) -> None:
        super().__init__(message)
        self.point = point
        self.invocation = invocation


@dataclass(frozen=True)
class FaultSpec:
    """Fault behavior at one point: error and/or latency, windowed.

    ``error_rate`` / ``latency_rate`` are per-invocation firing
    probabilities drawn from the plan's seeded stream (1.0 = always).
    ``after`` skips the first *n* invocations (outage starts mid-
    workload); ``limit`` caps how many times this spec fires (outage
    ends).  ``error`` builds the injected exception from a message —
    :class:`InjectedFault` by default (transient, retryable); pass e.g.
    a ``BindError`` factory to model deterministic failures.
    """

    point: str
    error_rate: float = 0.0
    latency_rate: float = 0.0
    latency_s: float = 0.0
    error: Callable[[str], Exception] | None = None
    after: int = 0
    limit: int | None = None

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS + CRASH_POINTS:
            raise ReproError(
                f"unknown fault point {self.point!r}; "
                f"known: {FAULT_POINTS + CRASH_POINTS}"
            )
        for name, rate in (
            ("error_rate", self.error_rate),
            ("latency_rate", self.latency_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise ReproError(f"{name} must be in [0, 1], got {rate}")
        if self.latency_s < 0 or self.after < 0:
            raise ReproError("latency_s and after must be non-negative")
        if self.limit is not None and self.limit < 0:
            raise ReproError(f"limit must be non-negative, got {self.limit}")


@dataclass
class FaultDecision:
    """What the plan decided for one invocation of one point."""

    point: str
    invocation: int
    #: ``BaseException`` because crash points raise
    #: :class:`SimulatedCrashError`, which is deliberately uncatchable
    #: by ``except Exception`` handlers.
    error: BaseException | None = None
    latency_s: float = 0.0


@dataclass
class _PointState:
    """Mutable per-point schedule state (counter + fired tallies)."""

    invocations: int = 0
    fired: dict[int, int] = field(default_factory=dict)  # spec index -> fires


class FaultPlan:
    """A seeded, deterministic fault schedule over the named points.

    Whether invocation *n* of point *p* fires is decided by uniform
    draws from ``derive_rng(seed, "faults", p, str(n), str(spec_index))``
    — a pure function of the plan parameters, independent of thread
    interleaving and of how many *other* points were exercised.
    """

    def __init__(self, specs: Iterable[FaultSpec], *, seed: int = 0) -> None:
        self.specs = tuple(specs)
        self.seed = seed
        self._lock = threading.Lock()
        self._by_point: dict[str, list[tuple[int, FaultSpec]]] = {}
        for index, spec in enumerate(self.specs):
            self._by_point.setdefault(spec.point, []).append((index, spec))
        self._states: dict[str, _PointState] = {
            point: _PointState() for point in self._by_point
        }

    # ------------------------------------------------------------------ #
    def draw(self, point: str) -> FaultDecision | None:
        """The decision for the next invocation of ``point`` (or None).

        Atomically advances the point's invocation counter; the decision
        for invocation *n* is the same in every run with this seed.
        """
        specs = self._by_point.get(point)
        if specs is None:
            return None
        with self._lock:
            state = self._states[point]
            invocation = state.invocations
            state.invocations += 1
            error: BaseException | None = None
            latency = 0.0
            for index, spec in specs:
                if invocation < spec.after:
                    continue
                fired = state.fired.get(index, 0)
                if spec.limit is not None and fired >= spec.limit:
                    continue
                rng = derive_rng(
                    self.seed, "faults", point, str(invocation), str(index)
                )
                fires = False
                if spec.error_rate and float(rng.random()) < spec.error_rate:
                    fires = True
                    if error is None:
                        error = self._build_error(spec, point, invocation)
                if spec.latency_rate and float(rng.random()) < spec.latency_rate:
                    fires = True
                    latency += spec.latency_s
                if fires:
                    state.fired[index] = fired + 1
            if error is None and latency == 0.0:
                return None
            return FaultDecision(
                point=point, invocation=invocation, error=error, latency_s=latency
            )

    @staticmethod
    def _build_error(
        spec: FaultSpec, point: str, invocation: int
    ) -> BaseException:
        message = f"injected fault at {point!r} (invocation {invocation})"
        if spec.error is not None:
            return spec.error(message)
        if point in CRASH_POINTS:
            return SimulatedCrashError(
                f"simulated crash at {point!r} (invocation {invocation})",
                point=point,
                invocation=invocation,
            )
        return InjectedFault(message, point=point, invocation=invocation)

    # ------------------------------------------------------------------ #
    @property
    def fired(self) -> dict[str, int]:
        """Total fired decisions per point (observability)."""
        with self._lock:
            return {
                point: sum(state.fired.values())
                for point, state in self._states.items()
            }

    @property
    def invocations(self) -> dict[str, int]:
        """Total invocations drawn per point."""
        with self._lock:
            return {
                point: state.invocations for point, state in self._states.items()
            }

    def describe(self) -> str:
        fired = self.fired
        parts = [
            f"{spec.point}(err={spec.error_rate}, lat={spec.latency_rate}"
            f"x{spec.latency_s}s)"
            for spec in self.specs
        ]
        summary = ", ".join(
            f"{point}={count}" for point, count in sorted(fired.items())
        )
        return f"fault plan seed={self.seed}: {'; '.join(parts)} [fired: {summary}]"


def outage(
    point: str, *, after: int = 0, limit: int | None = None
) -> FaultSpec:
    """A hard outage spec: every invocation in the window fails."""
    return FaultSpec(point=point, error_rate=1.0, after=after, limit=limit)


def kill(point: str, *, at: int = 0) -> FaultSpec:
    """A one-shot crash spec: invocation ``at`` of ``point`` dies.

    ``point`` must be one of :data:`CRASH_POINTS`; the fired error is a
    :class:`SimulatedCrashError`.  The chaos recovery matrix sweeps
    ``at`` over every reachable invocation of every crash point.
    """
    if point not in CRASH_POINTS:
        raise ReproError(
            f"kill() needs a crash point, got {point!r}; known: {CRASH_POINTS}"
        )
    return FaultSpec(point=point, error_rate=1.0, after=at, limit=1)


def crash_probes() -> list[FaultSpec]:
    """Zero-rate specs for every crash point: never fire, but make the
    plan *count invocations*, so a fault-free run enumerates every
    reachable kill point (``plan.invocations``) for the matrix."""
    return [FaultSpec(point=point) for point in CRASH_POINTS]
