"""Runtime lock-order sanitizer: the dynamic half of the invariant
guard (:mod:`repro.analysis` is the static half).

The serving stack holds ~9 locks across `core/` (serving admission,
journal, cache stripes, retention policies, circuit breakers, stats,
fault plans).  The AST lint can prove every one is held via ``with``,
but not that two threads never acquire them in opposite orders — the
classic deadlock that only bites under concurrency the test happened
not to schedule.  This module makes acquisition *order* observable:

- :class:`SanitizedLock` wraps a real lock; every successful acquire
  records a ``held -> acquired`` edge for each lock the acquiring
  thread already holds;
- :class:`LockOrderSanitizer` keeps the global edge graph and runs a
  DFS on each **new** edge: a cycle means two code paths disagree on
  order, i.e. a latent deadlock, even if this run never interleaved
  into it.  Violations are recorded (and optionally raised) with both
  offending edges' thread names and stack snippets;
- :func:`instrument_warehouse` swaps every known warehouse lock for a
  sanitized wrapper in place, returning the sanitizer so a test can
  ``assert_clean()`` after driving a workload.

The chaos matrix (``tests/chaos/test_lock_order.py``) drives all 20
seeds through an instrumented warehouse and asserts a cycle-free
graph; CI runs it as a dedicated step.  Wrapping is transparent to the
serving path — ``with lock:`` works unchanged — and, like everything
in :mod:`repro.testing`, is never active in production configurations.
"""

from __future__ import annotations

import threading
import traceback

from repro.errors import ReproError

__all__ = [
    "LockOrderError",
    "LockOrderSanitizer",
    "SanitizedLock",
    "instrument_warehouse",
]


class LockOrderError(ReproError):
    """A lock acquisition-order cycle (latent deadlock) was observed."""


class SanitizedLock:
    """Drop-in wrapper reporting acquisition order to a sanitizer.

    Proxies the real lock's blocking semantics exactly; the order edge
    is recorded only after a *successful* acquire, so a failed
    ``blocking=False`` probe never pollutes the graph.
    """

    __slots__ = ("_inner_lock", "name", "_sanitizer")

    def __init__(
        self, inner, name: str, sanitizer: "LockOrderSanitizer"
    ) -> None:
        self._inner_lock = inner
        self.name = name
        self._sanitizer = sanitizer

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        # The one sanctioned naked acquire: this *is* the instrumented
        # `with` machinery every other module is required to use.
        acquired = self._inner_lock.acquire(blocking, timeout)  # lint-allow: naked-acquire the sanitizer wrapper is the with-statement implementation
        if acquired:
            self._sanitizer._note_acquire(self.name)
        return acquired

    def release(self) -> None:
        self._sanitizer._note_release(self.name)
        self._inner_lock.release()  # lint-allow: naked-acquire paired with the instrumented acquire above

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.release()

    def locked(self) -> bool:
        return self._inner_lock.locked()

    def __repr__(self) -> str:
        return f"SanitizedLock({self.name!r})"


class LockOrderSanitizer:
    """Global acquisition-order graph with on-edge cycle detection."""

    def __init__(self, *, raise_on_cycle: bool = False) -> None:
        self._graph_lock = threading.Lock()
        #: held-name -> {acquired-name, ...}
        self._edges: dict[str, set[str]] = {}
        #: (held, acquired) -> "thread / stack" provenance of first sight
        self._edge_origin: dict[tuple[str, str], str] = {}
        self._tls = threading.local()
        self.violations: list[str] = []
        self.raise_on_cycle = raise_on_cycle
        self.acquisitions = 0

    # -- instrumentation ----------------------------------------------- #
    def wrap(self, lock, name: str) -> SanitizedLock:
        if isinstance(lock, SanitizedLock):
            return lock
        return SanitizedLock(lock, name, self)

    def _held(self) -> list[str]:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _note_acquire(self, name: str) -> None:
        held = self._held()
        new_edges = [
            (h, name) for h in held if h != name  # reentrant RLock: no self-edge
        ]
        held.append(name)
        if not new_edges:
            with self._graph_lock:
                self.acquisitions += 1
                self._edges.setdefault(name, set())
            return
        origin = None
        with self._graph_lock:
            self.acquisitions += 1
            self._edges.setdefault(name, set())
            for held_name, acquired_name in new_edges:
                targets = self._edges.setdefault(held_name, set())
                if acquired_name in targets:
                    continue
                targets.add(acquired_name)
                if origin is None:
                    frames = traceback.extract_stack(limit=8)[:-3]
                    origin = (
                        f"thread {threading.current_thread().name}: "
                        + " <- ".join(
                            f"{f.name}:{f.lineno}" for f in reversed(frames)
                        )
                    )
                self._edge_origin[(held_name, acquired_name)] = origin
                cycle = self._find_path(acquired_name, held_name)
                if cycle is not None:
                    self._record_cycle(held_name, acquired_name, cycle)

    def _note_release(self, name: str) -> None:
        held = self._held()
        for index in range(len(held) - 1, -1, -1):
            if held[index] == name:
                del held[index]
                return

    # -- cycle detection ----------------------------------------------- #
    def _find_path(self, start: str, goal: str) -> "list[str] | None":
        """DFS path start -> goal in the edge graph (caller holds
        ``_graph_lock``)."""
        stack = [(start, [start])]
        seen = {start}
        while stack:
            node, path = stack.pop()
            if node == goal:
                return path
            for nxt in self._edges.get(node, ()):
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append((nxt, path + [nxt]))
        return None

    def _record_cycle(
        self, held: str, acquired: str, path: list[str]
    ) -> None:
        cycle = [held, *path]
        legs = []
        for a, b in zip(cycle, cycle[1:]):
            origin = self._edge_origin.get((a, b), "unknown origin")
            legs.append(f"  {a} -> {b}   [{origin}]")
        message = (
            "lock acquisition-order cycle (latent deadlock): "
            + " -> ".join(cycle)
            + "\n"
            + "\n".join(legs)
        )
        self.violations.append(message)
        if self.raise_on_cycle:
            raise LockOrderError(message)

    # -- reporting ------------------------------------------------------ #
    def edges(self) -> dict[str, frozenset]:
        with self._graph_lock:
            return {k: frozenset(v) for k, v in self._edges.items()}

    def describe(self) -> dict:
        with self._graph_lock:
            return {
                "locks": sorted(self._edges),
                "edges": sorted(
                    (a, b) for a, bs in self._edges.items() for b in bs
                ),
                "acquisitions": self.acquisitions,
                "violations": list(self.violations),
            }

    def assert_clean(self) -> None:
        if self.violations:
            raise LockOrderError(
                f"{len(self.violations)} lock-order violation(s):\n"
                + "\n".join(self.violations)
            )


def instrument_warehouse(
    warehouse, sanitizer: "LockOrderSanitizer | None" = None
) -> LockOrderSanitizer:
    """Swap every known lock on *warehouse* for a sanitized wrapper.

    Covers the serving lock, the journal, all three plan-cache stripe
    sets and their retention policies, admission, the template
    frequency provider, both circuit breakers (statsvc + tuning, the
    latter only if the tuning service has materialized), resilience
    stats, the observability locks (metrics registry, cost history,
    snapshot collector), and an installed fault plan.  Call *after*
    the warehouse is fully constructed (and after ``inject_faults`` /
    first ``tuning``
    access, to catch those locks too); instrumenting twice is a no-op
    per lock.
    """
    sanitizer = sanitizer or LockOrderSanitizer()
    warehouse._serving_lock = sanitizer.wrap(
        warehouse._serving_lock, "warehouse.serving"
    )
    if warehouse.journal is not None:
        warehouse.journal._lock = sanitizer.wrap(
            warehouse.journal._lock, "journal"
        )
    for cache_name in ("plan_cache", "skeleton_cache", "binding_cache"):
        cache = getattr(warehouse, cache_name, None)
        if cache is None:
            continue
        for index, stripe in enumerate(cache._stripes):
            stripe.lock = sanitizer.wrap(
                stripe.lock, f"{cache_name}.stripe[{index}]"
            )
        policy = getattr(cache, "policy", None)
        if policy is not None and hasattr(policy, "_lock"):
            policy._lock = sanitizer.wrap(
                policy._lock, f"{cache_name}.policy"
            )
    warehouse.admission._lock = sanitizer.wrap(
        warehouse.admission._lock, "admission"
    )
    warehouse.frequency._lock = sanitizer.wrap(
        warehouse.frequency._lock, "frequency"
    )
    warehouse.statsvc_breaker._lock = sanitizer.wrap(
        warehouse.statsvc_breaker._lock, "statsvc_breaker"
    )
    warehouse.resilience_stats._lock = sanitizer.wrap(
        warehouse.resilience_stats._lock, "resilience_stats"
    )
    warehouse.metrics._lock = sanitizer.wrap(
        warehouse.metrics._lock, "metrics_registry"
    )
    warehouse.cost_history._lock = sanitizer.wrap(
        warehouse.cost_history._lock, "cost_history"
    )
    warehouse.collector._lock = sanitizer.wrap(
        warehouse.collector._lock, "snapshot_collector"
    )
    if warehouse.faults is not None:
        warehouse.faults._lock = sanitizer.wrap(
            warehouse.faults._lock, "fault_plan"
        )
    tuning = warehouse._tuning
    if tuning is not None:
        tuning.breaker._lock = sanitizer.wrap(
            tuning.breaker._lock, "tuning_breaker"
        )
    return sanitizer
