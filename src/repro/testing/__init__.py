"""Deterministic testing utilities (fault injection for chaos suites,
lock-order sanitizing for deadlock detection).

Separate from :mod:`repro.core` so production modules never import test
machinery; the warehouse only *accepts* an injected
:class:`~repro.testing.faults.FaultPlan` through
``warehouse.inject_faults``, and the lock-order sanitizer
(:mod:`repro.testing.locks`) instruments a warehouse from the outside.
"""

from repro.testing.faults import (
    CRASH_POINTS,
    FAULT_POINTS,
    FaultDecision,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    SimulatedCrashError,
    crash_probes,
    kill,
    outage,
)
from repro.testing.locks import (
    LockOrderError,
    LockOrderSanitizer,
    SanitizedLock,
    instrument_warehouse,
)

__all__ = [
    "CRASH_POINTS",
    "FAULT_POINTS",
    "FaultDecision",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "LockOrderError",
    "LockOrderSanitizer",
    "SanitizedLock",
    "SimulatedCrashError",
    "crash_probes",
    "instrument_warehouse",
    "kill",
    "outage",
]
