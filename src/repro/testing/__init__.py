"""Deterministic testing utilities (fault injection for chaos suites).

Separate from :mod:`repro.core` so production modules never import test
machinery; the warehouse only *accepts* an injected
:class:`~repro.testing.faults.FaultPlan` through
``warehouse.inject_faults``.
"""

from repro.testing.faults import (
    FAULT_POINTS,
    FaultDecision,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    outage,
)

__all__ = [
    "FAULT_POINTS",
    "FaultDecision",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "outage",
]
