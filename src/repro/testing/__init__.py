"""Deterministic testing utilities (fault injection for chaos suites).

Separate from :mod:`repro.core` so production modules never import test
machinery; the warehouse only *accepts* an injected
:class:`~repro.testing.faults.FaultPlan` through
``warehouse.inject_faults``.
"""

from repro.testing.faults import (
    CRASH_POINTS,
    FAULT_POINTS,
    FaultDecision,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    SimulatedCrashError,
    crash_probes,
    kill,
    outage,
)

__all__ = [
    "CRASH_POINTS",
    "FAULT_POINTS",
    "FaultDecision",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "SimulatedCrashError",
    "crash_probes",
    "kill",
    "outage",
]
