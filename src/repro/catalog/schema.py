"""Relational schema objects: data types, columns, and table schemas.

The engine is columnar and numpy-backed, so the type system is deliberately
small: 64-bit integers, 64-bit floats, fixed-dictionary strings, dates
(stored as int64 epoch days), and booleans.  Each type knows its on-wire
width, which the cost models use to convert cardinalities into bytes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.errors import CatalogError


class DataType(enum.Enum):
    """Supported column types with their storage width in bytes."""

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"
    DATE = "date"
    BOOL = "bool"

    @property
    def width_bytes(self) -> int:
        """Uncompressed per-value width used by cost and storage models."""
        return _WIDTHS[self]

    @property
    def numpy_dtype(self) -> np.dtype:
        """The dtype the local engine materializes this type with."""
        return _NUMPY_DTYPES[self]

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT64, DataType.FLOAT64, DataType.DATE)


_WIDTHS = {
    DataType.INT64: 8,
    DataType.FLOAT64: 8,
    DataType.STRING: 16,  # dictionary code + amortized dictionary share
    DataType.DATE: 8,
    DataType.BOOL: 1,
}

_NUMPY_DTYPES = {
    DataType.INT64: np.dtype(np.int64),
    DataType.FLOAT64: np.dtype(np.float64),
    DataType.STRING: np.dtype(np.int64),  # dictionary-encoded codes
    DataType.DATE: np.dtype(np.int64),  # epoch days
    DataType.BOOL: np.dtype(np.bool_),
}


@dataclass(frozen=True)
class Column:
    """A named, typed column.

    ``nullable`` is tracked for completeness; the synthetic generators do
    not currently produce NULLs, but the planner treats nullable columns
    conservatively in NDV-based estimates.
    """

    name: str
    dtype: DataType
    nullable: bool = False

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise CatalogError(f"invalid column name: {self.name!r}")


@dataclass(frozen=True)
class TableSchema:
    """An ordered collection of uniquely named columns."""

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = field(default=())
    clustering_key: str | None = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise CatalogError(f"invalid table name: {self.name!r}")
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"duplicate column names in table {self.name}")
        for key in self.primary_key:
            if key not in names:
                raise CatalogError(
                    f"primary key column {key!r} not in table {self.name}"
                )
        if self.clustering_key is not None and self.clustering_key not in names:
            raise CatalogError(
                f"clustering key {self.clustering_key!r} not in table {self.name}"
            )

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise CatalogError(f"table {self.name} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

    @property
    def row_width_bytes(self) -> int:
        """Uncompressed width of one row across all columns."""
        return sum(c.dtype.width_bytes for c in self.columns)

    def with_clustering_key(self, key: str | None) -> "TableSchema":
        """Return a copy clustered on ``key`` (used by the recluster action)."""
        return TableSchema(
            name=self.name,
            columns=self.columns,
            primary_key=self.primary_key,
            clustering_key=key,
        )
