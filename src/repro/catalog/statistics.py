"""Table and column statistics: equi-depth histograms, NDV, correlations.

These are the statistics the Metadata Service serves to the optimizer and
cost estimator.  They are intentionally classical (histograms + distinct
counts + min/max), because the paper argues for explainable estimation
models rather than black-box learned ones (§3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.catalog.schema import Column, DataType, TableSchema
from repro.errors import CatalogError

DEFAULT_HISTOGRAM_BUCKETS = 64


@dataclass(frozen=True)
class EquiDepthHistogram:
    """Equi-depth (equi-height) histogram over a numeric column.

    ``bounds`` has ``len(counts) + 1`` entries; bucket ``i`` covers
    ``[bounds[i], bounds[i+1])`` except the last bucket, which is closed on
    both sides.  Counts are approximately equal by construction, which keeps
    per-bucket selectivity errors bounded.
    """

    bounds: tuple[float, ...]
    counts: tuple[int, ...]

    def __post_init__(self) -> None:
        if len(self.bounds) != len(self.counts) + 1:
            raise CatalogError("histogram bounds/counts length mismatch")
        if any(c < 0 for c in self.counts):
            raise CatalogError("histogram counts must be non-negative")
        if any(hi < lo for lo, hi in zip(self.bounds[:-1], self.bounds[1:])):
            raise CatalogError("histogram bounds must be non-decreasing")

    @property
    def total_count(self) -> int:
        return int(sum(self.counts))

    @property
    def num_buckets(self) -> int:
        return len(self.counts)

    @classmethod
    def from_values(
        cls, values: np.ndarray, num_buckets: int = DEFAULT_HISTOGRAM_BUCKETS
    ) -> "EquiDepthHistogram":
        """Build an equi-depth histogram from raw values."""
        if values.size == 0:
            return cls(bounds=(0.0, 0.0), counts=(0,))
        data = np.sort(values.astype(np.float64))
        buckets = max(1, min(num_buckets, data.size))
        quantiles = np.linspace(0.0, 1.0, buckets + 1)
        bounds = np.quantile(data, quantiles)
        # Collapse duplicate bounds produced by heavy hitters: counts are
        # computed from the actual data so mass is conserved regardless.
        counts = np.zeros(buckets, dtype=np.int64)
        idx = np.searchsorted(bounds[1:-1], data, side="right")
        np.add.at(counts, idx, 1)
        return cls(bounds=tuple(float(b) for b in bounds), counts=tuple(int(c) for c in counts))

    def selectivity_le(self, value: float) -> float:
        """Estimated fraction of rows with ``col <= value``."""
        total = self.total_count
        if total == 0:
            return 0.0
        if value < self.bounds[0]:
            return 0.0
        if value >= self.bounds[-1]:
            return 1.0
        acc = 0.0
        for i, count in enumerate(self.counts):
            lo, hi = self.bounds[i], self.bounds[i + 1]
            if value >= hi:
                acc += count
            elif value < lo:
                break
            else:
                width = hi - lo
                frac = 1.0 if width <= 0 else (value - lo) / width
                acc += count * frac
                break
        return min(1.0, acc / total)

    def selectivity_range(self, lo: float | None, hi: float | None) -> float:
        """Estimated fraction of rows with ``lo <= col <= hi``.

        ``None`` bounds are open.  The result is clamped to [0, 1].
        """
        upper = self.selectivity_le(hi) if hi is not None else 1.0
        lower = self.selectivity_le(lo) if lo is not None else 0.0
        # selectivity_le is "<=", so subtracting slightly undercounts rows
        # equal to lo; acceptable for planning purposes.
        return max(0.0, min(1.0, upper - lower))

    def selectivity_eq(self, value: float, ndv: float) -> float:
        """Estimated fraction of rows with ``col == value``.

        Uses the containing bucket's mass divided by the bucket's share of
        distinct values (uniform-within-bucket assumption).
        """
        total = self.total_count
        if total == 0 or ndv <= 0:
            return 0.0
        if value < self.bounds[0] or value > self.bounds[-1]:
            return 0.0
        for i, count in enumerate(self.counts):
            lo, hi = self.bounds[i], self.bounds[i + 1]
            last = i == len(self.counts) - 1
            if (lo <= value < hi) or (last and value <= hi):
                bucket_ndv = max(1.0, ndv / self.num_buckets)
                return min(1.0, (count / total) / bucket_ndv)
        return 1.0 / ndv


@dataclass(frozen=True)
class ColumnStats:
    """Per-column statistics served by the metadata service."""

    column: Column
    row_count: int
    ndv: int
    min_value: float
    max_value: float
    null_count: int = 0
    histogram: EquiDepthHistogram | None = None

    def __post_init__(self) -> None:
        if self.row_count < 0 or self.ndv < 0 or self.null_count < 0:
            raise CatalogError("statistics counts must be non-negative")
        if self.ndv > max(self.row_count, 1):
            raise CatalogError("ndv cannot exceed row count")

    @property
    def avg_width_bytes(self) -> int:
        return self.column.dtype.width_bytes

    def scaled(self, factor: float) -> "ColumnStats":
        """Return stats for a uniformly scaled row count (used by what-if)."""
        rows = int(round(self.row_count * factor))
        return ColumnStats(
            column=self.column,
            row_count=rows,
            ndv=min(self.ndv, max(rows, 1) if rows else 0),
            min_value=self.min_value,
            max_value=self.max_value,
            null_count=int(round(self.null_count * factor)),
            histogram=self.histogram,
        )


@dataclass(frozen=True)
class TableStats:
    """Table-level statistics: cardinality plus per-column stats."""

    table: str
    row_count: int
    column_stats: dict[str, ColumnStats] = field(default_factory=dict)

    def column(self, name: str) -> ColumnStats:
        try:
            return self.column_stats[name]
        except KeyError:
            raise CatalogError(f"no statistics for column {self.table}.{name}") from None

    def has_column(self, name: str) -> bool:
        return name in self.column_stats


def build_column_stats(
    column: Column,
    values: np.ndarray,
    *,
    histogram_buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
    sample_rate: float = 1.0,
    rng: np.random.Generator | None = None,
) -> ColumnStats:
    """Compute :class:`ColumnStats` from a column's raw values.

    ``sample_rate`` < 1.0 computes statistics from a uniform row sample and
    scales counts back up — the knob the Statistics Service (§4) uses to
    trade statistics accuracy for collection cost.
    """
    if not 0.0 < sample_rate <= 1.0:
        raise CatalogError(f"sample_rate must be in (0, 1], got {sample_rate}")
    total_rows = int(values.size)
    sample = values
    if sample_rate < 1.0 and total_rows > 0:
        rng = rng or np.random.default_rng(0)
        take = max(1, int(round(total_rows * sample_rate)))
        sample = rng.choice(values, size=take, replace=False)

    if sample.size == 0:
        return ColumnStats(
            column=column, row_count=0, ndv=0, min_value=0.0, max_value=0.0
        )

    numeric = sample.astype(np.float64)
    _, counts = np.unique(sample, return_counts=True)
    distinct = int(counts.size)
    if sample.size < total_rows:
        # Chao1 estimator: d + f1^2 / (2 * f2), where f1/f2 are the numbers
        # of values seen exactly once/twice.  Saturated domains (few
        # singletons) stay near the sampled distinct count; sparse domains
        # scale up.  Clamped to the row count.
        f1 = int((counts == 1).sum())
        f2 = int((counts == 2).sum())
        chao = distinct + (f1 * f1) / (2.0 * max(1, f2))
        distinct = min(total_rows, max(distinct, int(round(chao))))
    histogram = EquiDepthHistogram.from_values(numeric, histogram_buckets)
    return ColumnStats(
        column=column,
        row_count=total_rows,
        ndv=max(1, min(distinct, total_rows)),
        min_value=float(numeric.min()),
        max_value=float(numeric.max()),
        histogram=histogram,
    )


def build_table_stats(
    schema: TableSchema,
    columns: dict[str, np.ndarray],
    *,
    histogram_buckets: int = DEFAULT_HISTOGRAM_BUCKETS,
    sample_rate: float = 1.0,
    rng: np.random.Generator | None = None,
) -> TableStats:
    """Compute :class:`TableStats` for all columns of a table."""
    row_count = 0
    for name in schema.column_names:
        if name in columns:
            row_count = int(columns[name].size)
            break
    stats: dict[str, ColumnStats] = {}
    for col in schema.columns:
        if col.name not in columns:
            continue
        values = columns[col.name]
        if values.size != row_count:
            raise CatalogError(
                f"column {schema.name}.{col.name} has {values.size} rows, "
                f"expected {row_count}"
            )
        stats[col.name] = build_column_stats(
            col,
            values,
            histogram_buckets=histogram_buckets,
            sample_rate=sample_rate,
            rng=rng,
        )
    return TableStats(table=schema.name, row_count=row_count, column_stats=stats)
