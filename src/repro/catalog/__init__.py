"""Metadata service: schemas, table statistics, and the catalog.

This package plays the role of the low-latency "Metadata Service" in the
paper's architecture (Figure 3): it owns the system catalog and the table
statistics that query planning and cost estimation consume.
"""

from repro.catalog.schema import Column, DataType, TableSchema
from repro.catalog.statistics import (
    ColumnStats,
    EquiDepthHistogram,
    TableStats,
    build_column_stats,
    build_table_stats,
)
from repro.catalog.catalog import Catalog, TableEntry

__all__ = [
    "Column",
    "DataType",
    "TableSchema",
    "ColumnStats",
    "EquiDepthHistogram",
    "TableStats",
    "build_column_stats",
    "build_table_stats",
    "Catalog",
    "TableEntry",
]
