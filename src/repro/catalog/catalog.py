"""The system catalog: tables, statistics, and tuning artifacts.

This is the queryable face of the Metadata Service in the paper's
architecture (Figure 3).  Besides base tables it tracks the artifacts that
cost-oriented auto-tuning (§4) creates — materialized views and clustering
layouts — so the optimizer and the What-If Service see a single source of
truth.  ``Catalog.overlay()`` produces a cheap hypothetical copy, which is
how what-if analysis evaluates a tuning action without applying it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator

from repro.catalog.schema import TableSchema
from repro.catalog.statistics import TableStats
from repro.errors import CatalogError


@dataclass(frozen=True)
class MaterializedViewDef:
    """Definition of a materialized view registered in the catalog.

    The view is restricted to the shape the tuning advisor proposes
    (paper §4's running example): an inner-join of base tables, optional
    conjunctive filters, an optional group-by with aggregates.  ``sql`` is
    kept for display; the structural fields drive plan matching.
    """

    name: str
    base_tables: tuple[str, ...]
    join_keys: tuple[tuple[str, str], ...]  # ((tbl.col, tbl.col), ...)
    group_by: tuple[str, ...] = ()
    aggregates: tuple[str, ...] = ()
    filters: tuple[str, ...] = ()
    sql: str = ""
    row_count: int = 0
    storage_bytes: int = 0


@dataclass(frozen=True)
class TableEntry:
    """A catalog entry: schema + statistics + physical layout facts."""

    schema: TableSchema
    stats: TableStats
    storage_bytes: int = 0
    num_partitions: int = 1
    dictionaries: dict[str, tuple[str, ...]] = field(default_factory=dict)
    """Sorted value dictionaries for STRING columns; code = index.  The
    binder uses them to translate string literals into dictionary codes."""
    clustering_depth: float = 1.0
    """Average number of partitions a clustering-key point lookup touches,
    normalized to [1/num_partitions, 1]; 1.0 means unclustered (every
    partition overlaps every key range), lower is better-clustered."""

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def row_count(self) -> int:
        return self.stats.row_count


class Catalog:
    """Mutable registry of tables and tuning artifacts.

    All planner/estimator reads go through this object.  ``overlay`` returns
    a copy-on-write clone used by the What-If Service; mutations to the
    overlay never touch the parent.
    """

    def __init__(self) -> None:
        self._tables: dict[str, TableEntry] = {}
        self._views: dict[str, MaterializedViewDef] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Monotonic stats/schema version.

        Bumped by every mutation (table registration, stats refresh,
        reclustering, view changes); plan caches key on it so any change
        to planner-visible metadata invalidates cached plans.
        """
        return self._version

    def _bump_version(self) -> None:
        self._version += 1

    # ------------------------------------------------------------------ #
    # Tables
    # ------------------------------------------------------------------ #
    def register_table(self, entry: TableEntry, *, replace_existing: bool = False) -> None:
        name = entry.name
        if name in self._tables and not replace_existing:
            raise CatalogError(f"table {name!r} already registered")
        self._tables[name] = entry
        self._bump_version()

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"unknown table {name!r}")
        del self._tables[name]
        self._bump_version()

    def table(self, name: str) -> TableEntry:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(f"unknown table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    def tables(self) -> Iterator[TableEntry]:
        return iter(self._tables.values())

    @property
    def table_names(self) -> tuple[str, ...]:
        return tuple(self._tables)

    def update_stats(self, name: str, stats: TableStats) -> None:
        entry = self.table(name)
        self._tables[name] = replace(entry, stats=stats)
        self._bump_version()

    def set_clustering(self, name: str, key: str | None, depth: float) -> None:
        """Record a (re)clustering layout change for ``name``.

        ``depth`` is the resulting clustering depth (see TableEntry).
        """
        if not 0.0 < depth <= 1.0:
            raise CatalogError(f"clustering depth must be in (0, 1], got {depth}")
        entry = self.table(name)
        self._tables[name] = replace(
            entry,
            schema=entry.schema.with_clustering_key(key),
            clustering_depth=depth,
        )
        self._bump_version()

    # ------------------------------------------------------------------ #
    # Materialized views
    # ------------------------------------------------------------------ #
    def register_view(self, view: MaterializedViewDef) -> None:
        """Register an MV definition.

        The definition may share its name with the table that backs the
        materialization (that is the normal pairing); it must not clash
        with another view.
        """
        if view.name in self._views:
            raise CatalogError(f"materialized view {view.name!r} already exists")
        self._views[view.name] = view
        self._bump_version()

    def drop_view(self, name: str) -> None:
        if name not in self._views:
            raise CatalogError(f"unknown materialized view {name!r}")
        del self._views[name]
        self._bump_version()

    def views(self) -> Iterator[MaterializedViewDef]:
        return iter(self._views.values())

    def has_view(self, name: str) -> bool:
        return name in self._views

    def view(self, name: str) -> MaterializedViewDef:
        try:
            return self._views[name]
        except KeyError:
            raise CatalogError(f"unknown materialized view {name!r}") from None

    # ------------------------------------------------------------------ #
    # Hypothetical catalogs (what-if)
    # ------------------------------------------------------------------ #
    def overlay(self) -> "Catalog":
        """Return an independent shallow copy for hypothetical changes.

        Entries are immutable dataclasses, so a dict copy is sufficient:
        the overlay can rebind names without mutating shared state.
        """
        clone = Catalog()
        clone._tables = dict(self._tables)
        clone._views = dict(self._views)
        clone._version = self._version
        return clone

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    def total_storage_bytes(self) -> int:
        tables = sum(e.storage_bytes for e in self._tables.values())
        views = sum(v.storage_bytes for v in self._views.values())
        return tables + views

    def describe(self) -> str:
        """Human-readable catalog summary (for examples and debugging)."""
        lines = []
        for entry in sorted(self._tables.values(), key=lambda e: e.name):
            cols = ", ".join(
                f"{c.name}:{c.dtype.value}" for c in entry.schema.columns
            )
            lines.append(
                f"table {entry.name} ({cols}) rows={entry.row_count:,} "
                f"partitions={entry.num_partitions}"
            )
        for view in sorted(self._views.values(), key=lambda v: v.name):
            lines.append(
                f"mview {view.name} over {'+'.join(view.base_tables)} "
                f"rows={view.row_count:,}"
            )
        return "\n".join(lines)
