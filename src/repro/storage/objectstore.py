"""Simulated cloud object store (S3/Blob-like).

The cost models only need the store's *economic and performance envelope*:
per-request latency, per-connection bandwidth, per-node aggregate bandwidth
cap, and the standard pricing dimensions (GB-month storage, per-request
fees, optional egress).  Blob payloads are tracked by size — the actual
column data lives in :class:`repro.storage.micropartition.MicroPartition`
objects held in memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import StorageError
from repro.util.units import GB, MB, HOURS_PER_MONTH


@dataclass(frozen=True)
class ObjectStoreConfig:
    """Performance/pricing envelope, defaults loosely modeled on S3.

    Bandwidth numbers are per compute node: a single GET streams at
    ``per_request_bandwidth``; a node can open several parallel ranged GETs
    up to ``per_node_bandwidth``.
    """

    request_latency_s: float = 0.030
    per_request_bandwidth: float = 80.0 * MB  # bytes/s for one GET stream
    per_node_bandwidth: float = 1.2 * GB  # bytes/s aggregate per node
    storage_price_gb_month: float = 0.023
    price_per_get: float = 0.4e-6
    price_per_put: float = 5e-6
    egress_price_gb: float = 0.0  # intra-region: free

    @property
    def storage_price_gb_second(self) -> float:
        return self.storage_price_gb_month / (HOURS_PER_MONTH * 3600.0)


@dataclass
class TransferStats:
    """Accumulated request/byte counters, convertible to dollars."""

    gets: int = 0
    puts: int = 0
    bytes_read: int = 0
    bytes_written: int = 0

    def add(self, other: "TransferStats") -> None:
        self.gets += other.gets
        self.puts += other.puts
        self.bytes_read += other.bytes_read
        self.bytes_written += other.bytes_written

    def request_dollars(self, config: ObjectStoreConfig) -> float:
        return self.gets * config.price_per_get + self.puts * config.price_per_put


@dataclass
class _BlobMeta:
    size_bytes: int
    payload: object | None = None


class ObjectStore:
    """A named blob namespace with a performance/pricing model.

    ``put``/``get`` track request counts and bytes; ``read_time``/
    ``write_time`` answer "how long does moving N bytes take for a node
    using ``parallel_streams`` connections" — the primitive the scan cost
    model and the distributed simulator both build on.
    """

    def __init__(self, config: ObjectStoreConfig | None = None) -> None:
        self.config = config or ObjectStoreConfig()
        self._blobs: dict[str, _BlobMeta] = {}
        self.stats = TransferStats()

    # ------------------------------------------------------------------ #
    # Blob namespace
    # ------------------------------------------------------------------ #
    def put(self, key: str, size_bytes: int, payload: object | None = None) -> None:
        if size_bytes < 0:
            raise StorageError(f"negative blob size for {key!r}")
        self._blobs[key] = _BlobMeta(size_bytes=size_bytes, payload=payload)
        self.stats.puts += 1
        self.stats.bytes_written += size_bytes

    def get(self, key: str) -> object | None:
        meta = self._meta(key)
        self.stats.gets += 1
        self.stats.bytes_read += meta.size_bytes
        return meta.payload

    def delete(self, key: str) -> None:
        if key not in self._blobs:
            raise StorageError(f"unknown blob {key!r}")
        del self._blobs[key]

    def exists(self, key: str) -> bool:
        return key in self._blobs

    def size_of(self, key: str) -> int:
        return self._meta(key).size_bytes

    def total_bytes(self) -> int:
        return sum(b.size_bytes for b in self._blobs.values())

    def _meta(self, key: str) -> _BlobMeta:
        try:
            return self._blobs[key]
        except KeyError:
            raise StorageError(f"unknown blob {key!r}") from None

    # ------------------------------------------------------------------ #
    # Performance model
    # ------------------------------------------------------------------ #
    def read_time(self, size_bytes: int, parallel_streams: int = 8) -> float:
        """Seconds for one node to read ``size_bytes`` with ranged GETs."""
        if size_bytes <= 0:
            return 0.0
        streams = max(1, parallel_streams)
        bandwidth = min(
            self.config.per_node_bandwidth,
            streams * self.config.per_request_bandwidth,
        )
        return self.config.request_latency_s + size_bytes / bandwidth

    def write_time(self, size_bytes: int, parallel_streams: int = 8) -> float:
        """Seconds for one node to write ``size_bytes`` (PUT multipart)."""
        # Writes use the same envelope; multipart uploads parallelize like
        # ranged reads do.
        return self.read_time(size_bytes, parallel_streams)

    # ------------------------------------------------------------------ #
    # Pricing model
    # ------------------------------------------------------------------ #
    def storage_dollars(self, duration_s: float, size_bytes: int | None = None) -> float:
        """Storage cost of holding ``size_bytes`` (default: all blobs)."""
        if duration_s < 0:
            raise StorageError("negative storage duration")
        size = self.total_bytes() if size_bytes is None else size_bytes
        return (size / GB) * self.config.storage_price_gb_second * duration_s

    def request_dollars(self) -> float:
        return self.stats.request_dollars(self.config)
