"""Stored tables: micro-partition sets with clustering and pruning.

:class:`StoredTable` is what the local engine scans and what the
reclustering tuning action physically rewrites.  Clustering quality is
summarized by *clustering depth*: the expected fraction of partitions a
range predicate on the clustering key must read.  Depth close to 1.0 means
values are scattered across all partitions; depth near ``1/num_partitions``
means perfectly sorted data.
"""

from __future__ import annotations

import numpy as np

from repro.catalog.schema import TableSchema
from repro.errors import StorageError
from repro.storage.micropartition import DEFAULT_PARTITION_ROWS, MicroPartition


def split_into_partitions(
    schema: TableSchema,
    columns: dict[str, np.ndarray],
    partition_rows: int = DEFAULT_PARTITION_ROWS,
) -> list[MicroPartition]:
    """Split raw column arrays into fixed-size micro-partitions."""
    if partition_rows <= 0:
        raise StorageError(f"partition_rows must be positive, got {partition_rows}")
    names = list(columns)
    if not names:
        return []
    total = columns[names[0]].size
    partitions: list[MicroPartition] = []
    for pid, start in enumerate(range(0, total, partition_rows)):
        stop = min(start + partition_rows, total)
        chunk = {name: columns[name][start:stop] for name in names}
        partitions.append(MicroPartition(schema, chunk, partition_id=pid))
    return partitions


def cluster_by(
    schema: TableSchema,
    columns: dict[str, np.ndarray],
    key: str,
    partition_rows: int = DEFAULT_PARTITION_ROWS,
) -> list[MicroPartition]:
    """Sort rows by ``key`` and re-split — the physical recluster operation."""
    if key not in columns:
        raise StorageError(f"cannot cluster {schema.name} by unknown column {key!r}")
    order = np.argsort(columns[key], kind="stable")
    sorted_cols = {name: arr[order] for name, arr in columns.items()}
    return split_into_partitions(
        schema.with_clustering_key(key), sorted_cols, partition_rows
    )


class StoredTable:
    """A table materialized as micro-partitions on the object store."""

    def __init__(
        self,
        schema: TableSchema,
        partitions: list[MicroPartition],
    ) -> None:
        self.schema = schema
        self.partitions = partitions

    @classmethod
    def from_columns(
        cls,
        schema: TableSchema,
        columns: dict[str, np.ndarray],
        *,
        partition_rows: int = DEFAULT_PARTITION_ROWS,
        cluster_key: str | None = None,
    ) -> "StoredTable":
        for name in schema.column_names:
            if name not in columns:
                raise StorageError(f"missing column {schema.name}.{name}")
        if cluster_key is not None:
            parts = cluster_by(schema, columns, cluster_key, partition_rows)
            schema = schema.with_clustering_key(cluster_key)
        else:
            parts = split_into_partitions(schema, columns, partition_rows)
        return cls(schema, parts)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def row_count(self) -> int:
        return sum(p.row_count for p in self.partitions)

    @property
    def num_partitions(self) -> int:
        return len(self.partitions)

    def stored_bytes(self, columns: tuple[str, ...] | None = None) -> int:
        return sum(p.stored_bytes(columns) for p in self.partitions)

    def column_concat(self, name: str) -> np.ndarray:
        """Concatenate one column across partitions (testing/data export)."""
        arrays = [p.column(name) for p in self.partitions]
        if not arrays:
            return np.empty(0)
        return np.concatenate(arrays)

    def all_columns(self) -> dict[str, np.ndarray]:
        return {name: self.column_concat(name) for name in self.schema.column_names}

    # ------------------------------------------------------------------ #
    # Pruning & clustering quality
    # ------------------------------------------------------------------ #
    def prune_range(
        self, column: str, lo: float | None, hi: float | None
    ) -> list[MicroPartition]:
        """Partitions that may contain rows with ``lo <= column <= hi``."""
        return [
            p for p in self.partitions if not p.prunable_by_range(column, lo, hi)
        ]

    def clustering_depth(self, column: str, probes: int = 64) -> float:
        """Measured clustering depth of ``column``.

        Probes ``probes`` equally spaced point values across the column's
        domain and returns the mean fraction of partitions whose zone maps
        overlap each probe.  1.0 = unclustered, 1/num_partitions = perfect.
        """
        if not self.partitions:
            return 1.0
        zones = [p.zone_maps.get(column) for p in self.partitions]
        if any(z is None for z in zones):
            return 1.0
        lo = min(z.min_value for z in zones)  # type: ignore[union-attr]
        hi = max(z.max_value for z in zones)  # type: ignore[union-attr]
        if hi <= lo:
            return 1.0
        probe_values = np.linspace(lo, hi, probes)
        total_overlap = 0
        for value in probe_values:
            total_overlap += sum(
                1 for z in zones if z.may_contain_eq(float(value))  # type: ignore[union-attr]
            )
        return total_overlap / (probes * len(self.partitions))

    def recluster(self, key: str) -> "StoredTable":
        """Return a new StoredTable physically re-sorted on ``key``."""
        rows_per_part = max(
            1, self.partitions[0].row_count if self.partitions else DEFAULT_PARTITION_ROWS
        )
        columns = self.all_columns()
        parts = cluster_by(self.schema, columns, key, rows_per_part)
        return StoredTable(self.schema.with_clustering_key(key), parts)
