"""Columnar micro-partitions with zone maps.

A micro-partition is the unit of storage, pruning, and scan-time morsel
formation — the same role Snowflake's micro-partitions or Parquet row
groups play.  Each partition stores numpy column arrays plus a per-column
:class:`ZoneMap` (min/max) used for partition pruning; pruning efficiency
is what the reclustering tuning action (§4) improves.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.catalog.schema import TableSchema
from repro.errors import StorageError

DEFAULT_PARTITION_ROWS = 64_000
COMPRESSION_RATIO = 3.0
"""Assumed columnar-compression ratio applied to on-store byte sizes."""


@dataclass(frozen=True)
class ZoneMap:
    """Min/max summary of one column within one micro-partition."""

    min_value: float
    max_value: float

    def may_contain_range(self, lo: float | None, hi: float | None) -> bool:
        """Can any value in [lo, hi] exist in this partition?"""
        if lo is not None and self.max_value < lo:
            return False
        if hi is not None and self.min_value > hi:
            return False
        return True

    def may_contain_eq(self, value: float) -> bool:
        return self.min_value <= value <= self.max_value


class MicroPartition:
    """An immutable horizontal slice of a table with column zone maps."""

    def __init__(
        self,
        schema: TableSchema,
        columns: dict[str, np.ndarray],
        partition_id: int = 0,
    ) -> None:
        sizes = {name: arr.size for name, arr in columns.items()}
        if len(set(sizes.values())) > 1:
            raise StorageError(f"ragged columns in partition: {sizes}")
        self.schema = schema
        self.partition_id = partition_id
        self._columns = {name: np.asarray(arr) for name, arr in columns.items()}
        self.row_count = next(iter(sizes.values())) if sizes else 0
        self.zone_maps: dict[str, ZoneMap] = {}
        for name, arr in self._columns.items():
            if arr.size and np.issubdtype(arr.dtype, np.number):
                self.zone_maps[name] = ZoneMap(
                    min_value=float(arr.min()), max_value=float(arr.max())
                )

    # ------------------------------------------------------------------ #
    # Data access
    # ------------------------------------------------------------------ #
    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._columns)

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise StorageError(
                f"partition of {self.schema.name} has no column {name!r}"
            ) from None

    def project(self, names: tuple[str, ...]) -> dict[str, np.ndarray]:
        return {name: self.column(name) for name in names}

    # ------------------------------------------------------------------ #
    # Size model
    # ------------------------------------------------------------------ #
    def uncompressed_bytes(self, columns: tuple[str, ...] | None = None) -> int:
        names = columns if columns is not None else self.column_names
        width = sum(self.schema.column(n).dtype.width_bytes for n in names)
        return self.row_count * width

    def stored_bytes(self, columns: tuple[str, ...] | None = None) -> int:
        """On-object-store size after columnar compression."""
        return int(self.uncompressed_bytes(columns) / COMPRESSION_RATIO)

    # ------------------------------------------------------------------ #
    # Pruning
    # ------------------------------------------------------------------ #
    def prunable_by_range(
        self, column: str, lo: float | None, hi: float | None
    ) -> bool:
        """True when the zone map proves no row matches ``lo <= col <= hi``."""
        zone = self.zone_maps.get(column)
        if zone is None:
            return False
        return not zone.may_contain_range(lo, hi)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MicroPartition({self.schema.name}#{self.partition_id}, "
            f"rows={self.row_count})"
        )
