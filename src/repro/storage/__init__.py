"""Data storage layer: simulated cloud object store + columnar partitions.

Substitutes for AWS S3 / Azure Blob in the paper's architecture: the
object store models request latency, bandwidth, and request/storage
pricing, while micro-partitions hold real (numpy) column data with
min/max zone maps used for partition pruning.
"""

from repro.storage.objectstore import ObjectStore, ObjectStoreConfig, TransferStats
from repro.storage.micropartition import MicroPartition, ZoneMap
from repro.storage.table_storage import StoredTable, cluster_by, split_into_partitions

__all__ = [
    "ObjectStore",
    "ObjectStoreConfig",
    "TransferStats",
    "MicroPartition",
    "ZoneMap",
    "StoredTable",
    "cluster_by",
    "split_into_partitions",
]
