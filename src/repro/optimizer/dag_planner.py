"""DAG planner: bound query graph -> physical execution DAG.

This is the "traditional single-machine query optimization that produces
an execution DAG" stage of the paper's two-stage optimizer (§3.2): join
ordering (left-deep DP), physical operator selection, exchange placement
with partitioning-property propagation, and two-phase aggregation.  DOP
assignment is deliberately *not* decided here — that is the DOP planner's
job, applied to this DAG (and to its bushy variants) afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from weakref import WeakKeyDictionary

from repro.catalog.catalog import Catalog
from repro.errors import OptimizerError
from repro.optimizer.cardinality import (
    DEFAULT_SELECTIVITY,
    CardinalityEstimator,
    EstimatedRelation,
)
from repro.optimizer.join_order import JoinTree, Leaf, connecting_edges, order_joins
from repro.plan.expressions import ColumnRef, Expr, make_and, referenced_columns
from repro.plan.physical import (
    AggMode,
    ExchangeKind,
    PhysAggregate,
    PhysExchange,
    PhysFilter,
    PhysHashJoin,
    PhysLimit,
    PhysNode,
    PhysProject,
    PhysScan,
    PhysSort,
)
from repro.sql.binder import BoundQuery, JoinEdge
from repro.util.units import MB

#: Build sides smaller than this (estimated bytes) are broadcast.
DEFAULT_BROADCAST_THRESHOLD = 32 * MB

#: Reference DOP used for static partial-aggregate output estimates; the
#: cost models recompute this term once the actual DOP is known.
REFERENCE_DOP = 8


@dataclass
class _Stream:
    """A planned sub-result: physical node + estimate + partitioning."""

    node: PhysNode
    rel: EstimatedRelation
    partition_cols: frozenset[str]


class DagPlanner:
    """Plans bound queries into annotated physical DAGs."""

    def __init__(
        self,
        catalog: Catalog,
        *,
        broadcast_threshold: float = DEFAULT_BROADCAST_THRESHOLD,
        left_deep_only: bool = True,
    ) -> None:
        self.catalog = catalog
        self.estimator = CardinalityEstimator(catalog)
        self.broadcast_threshold = broadcast_threshold
        self.left_deep_only = left_deep_only
        # Per-query memo of table predicates, base-relation estimates,
        # and join estimates: every join-tree variant of one query
        # re-plans the same scans, and bushy generation asks for the
        # same base relations again.  Entries die with the bound query
        # (weak keys) and are discarded when the catalog version moves,
        # so a stats refresh between plans of the same query can never
        # serve stale estimates.
        self._per_query: "WeakKeyDictionary[BoundQuery, tuple[int, dict]]" = (
            WeakKeyDictionary()
        )

    def _query_memo(self, query: BoundQuery) -> dict:
        version = self.catalog.version
        entry = self._per_query.get(query)
        if entry is None or entry[0] != version:
            entry = (version, {})
            self._per_query[query] = entry
        return entry[1]

    def _table_predicate(self, query: BoundQuery, table: str) -> Expr | None:
        memo = self._query_memo(query)
        key = ("predicate", table)
        if key not in memo:
            memo[key] = make_and(query.filters.get(table, []))
        return memo[key]

    # ------------------------------------------------------------------ #
    # Entry points
    # ------------------------------------------------------------------ #
    def plan(self, query: BoundQuery) -> PhysNode:
        """Plan with the DP-chosen join order."""
        tree = self.choose_join_tree(query)
        return self.plan_with_tree(query, tree)

    def choose_join_tree(self, query: BoundQuery) -> JoinTree | Leaf:
        base = {
            ref.name: self.base_relation(query, ref.name) for ref in query.tables
        }
        tree, _ = order_joins(
            base,
            query.join_edges,
            self.estimator,
            left_deep_only=self.left_deep_only,
        )
        return tree

    def plan_with_tree(self, query: BoundQuery, tree: JoinTree | Leaf) -> PhysNode:
        """Plan with an explicit join tree (used by bushy-variant search)."""
        stream = self._plan_join_tree(query, tree)
        stream = self._apply_residuals(query, stream)
        stream = self._plan_aggregation(query, stream)
        stream = self._plan_projection(query, stream)
        stream = self._plan_distinct(query, stream)
        stream = self._plan_order_and_limit(query, stream)
        return self._gather(stream).node

    # ------------------------------------------------------------------ #
    # Scans
    # ------------------------------------------------------------------ #
    def base_relation(self, query: BoundQuery, table: str) -> EstimatedRelation:
        memo = self._query_memo(query)
        key = ("base", table)
        found = memo.get(key)
        if found is None:
            found = self.estimator.base_relation(
                table,
                self._table_predicate(query, table),
                query.columns_needed(table),
            )
            memo[key] = found
        return found

    def _plan_scan(self, query: BoundQuery, table: str) -> _Stream:
        entry = self.catalog.table(table)
        predicate = self._table_predicate(query, table)
        columns = query.columns_needed(table)
        if not columns:
            # A table used only for its existence (e.g. key-only join):
            # keep its primary key so the scan has output.
            columns = tuple(entry.schema.primary_key) or (entry.schema.columns[0].name,)
            rel = self.estimator.base_relation(table, predicate, columns)
        else:
            rel = self.base_relation(query, table)
        memo = self._query_memo(query)
        fraction_key = ("fraction", table)
        fraction = memo.get(fraction_key)
        if fraction is None:
            fraction = self.estimator.scan_partition_fraction(table, predicate)
            memo[fraction_key] = fraction

        read_columns = set(columns)
        if predicate is not None:
            read_columns |= referenced_columns(predicate)
        read_width = sum(
            entry.schema.column(c).dtype.width_bytes for c in read_columns
        )
        scan = PhysScan(
            table=table,
            columns=columns,
            predicate=predicate,
            partition_fraction=fraction,
        )
        scan.input_rows = entry.row_count * fraction
        scan.input_bytes = (
            entry.storage_bytes
            * fraction
            * (read_width / max(1, entry.schema.row_width_bytes))
        )
        scan.est_rows = rel.rows
        scan.est_bytes = rel.bytes
        return _Stream(node=scan, rel=rel, partition_cols=frozenset())

    # ------------------------------------------------------------------ #
    # Joins
    # ------------------------------------------------------------------ #
    def _plan_join_tree(self, query: BoundQuery, tree: JoinTree | Leaf) -> _Stream:
        if isinstance(tree, Leaf):
            return self._plan_scan(query, tree.table)
        left = self._plan_join_tree(query, tree.left)
        right = self._plan_join_tree(query, tree.right)
        edges = list(tree.edges)
        if not edges:
            raise OptimizerError("join tree node without edges")
        return self._build_hash_join(left, right, edges, query=query)

    def _join_relation(
        self,
        build: _Stream,
        probe: _Stream,
        edges: list[JoinEdge],
        query: BoundQuery | None,
    ) -> EstimatedRelation:
        """Join cardinality estimate, memoized per query.

        Bushy variants of one query share join prefixes; the estimate
        is a pure function of the two input relations and the edges.
        The key uses the input relations' *object identities*: scans
        and joins are themselves memoized per query, so structurally
        identical subtrees hand back the same relation objects, while
        differently-shaped subtrees over the same tables (which carry
        different rows/ndv) get distinct keys.  The memo holds strong
        references to every keyed relation, so ids cannot be recycled
        while the entry lives.
        """
        if query is None:
            return self.estimator.join(build.rel, probe.rel, edges)
        memo = self._query_memo(query)
        key = ("join", id(build.rel), id(probe.rel), tuple(edges))
        entry = memo.get(key)
        if entry is None:
            entry = (
                self.estimator.join(build.rel, probe.rel, edges),
                build.rel,
                probe.rel,
            )
            memo[key] = entry
        return entry[0]

    def _build_hash_join(
        self,
        left: _Stream,
        right: _Stream,
        edges: list[JoinEdge],
        query: BoundQuery | None = None,
    ) -> _Stream:
        # Build on the smaller estimated side.
        if left.rel.bytes <= right.rel.bytes:
            build, probe = left, right
        else:
            build, probe = right, left

        build_keys: list[ColumnRef] = []
        probe_keys: list[ColumnRef] = []
        for edge in edges:
            a, b = edge.tables()
            if a in build.rel.tables and b in probe.rel.tables:
                build_keys.append(edge.left)
                probe_keys.append(edge.right)
            elif b in build.rel.tables and a in probe.rel.tables:
                build_keys.append(edge.right)
                probe_keys.append(edge.left)
            else:
                raise OptimizerError(f"edge {edge} does not connect join inputs")

        joined_rel = self._join_relation(build, probe, edges, query)
        broadcast = build.rel.bytes < self.broadcast_threshold

        build_node = build.node
        probe_node = probe.node
        if broadcast:
            build_node = self._exchange(build_node, build.rel, ExchangeKind.BROADCAST)
            partition_cols = probe.partition_cols
        else:
            anchor_build = build_keys[0].name
            anchor_probe = probe_keys[0].name
            if anchor_build not in build.partition_cols:
                build_node = self._exchange(
                    build_node, build.rel, ExchangeKind.SHUFFLE, keys=(anchor_build,)
                )
                build_partition = frozenset([anchor_build])
            else:
                build_partition = build.partition_cols
            if anchor_probe not in probe.partition_cols:
                probe_node = self._exchange(
                    probe_node, probe.rel, ExchangeKind.SHUFFLE, keys=(anchor_probe,)
                )
                probe_partition = frozenset([anchor_probe])
            else:
                probe_partition = probe.partition_cols
            # The join key values coincide on both sides, so the output is
            # partitioned on the whole equivalence class.
            partition_cols = build_partition | probe_partition

        join = PhysHashJoin(
            build=build_node,
            probe=probe_node,
            build_keys=tuple(build_keys),
            probe_keys=tuple(probe_keys),
            broadcast_build=broadcast,
        )
        join.est_rows = joined_rel.rows
        join.est_bytes = joined_rel.bytes
        return _Stream(node=join, rel=joined_rel, partition_cols=partition_cols)

    def _exchange(
        self,
        node: PhysNode,
        rel: EstimatedRelation,
        kind: ExchangeKind,
        keys: tuple[str, ...] = (),
    ) -> PhysNode:
        exchange = PhysExchange(child=node, kind=kind, keys=keys)
        exchange.est_rows = rel.rows
        exchange.est_bytes = rel.bytes
        return exchange

    # ------------------------------------------------------------------ #
    # Residual predicates
    # ------------------------------------------------------------------ #
    def _apply_residuals(self, query: BoundQuery, stream: _Stream) -> _Stream:
        if not query.residuals:
            return stream
        predicate = make_and(query.residuals)
        assert predicate is not None
        node = PhysFilter(child=stream.node, predicate=predicate)
        selectivity = DEFAULT_SELECTIVITY ** len(query.residuals)
        rel = replace(stream.rel, rows=stream.rel.rows * selectivity)
        node.est_rows = rel.rows
        node.est_bytes = rel.bytes
        return _Stream(node=node, rel=rel, partition_cols=stream.partition_cols)

    # ------------------------------------------------------------------ #
    # Aggregation
    # ------------------------------------------------------------------ #
    def _plan_aggregation(self, query: BoundQuery, stream: _Stream) -> _Stream:
        if not query.has_aggregation:
            return stream
        keys = tuple(query.group_keys)
        key_names = tuple(k.name for k in keys)
        aggregates = tuple(query.aggregates)
        agg_names = tuple(query.agg_names)
        groups = self.estimator.group_count(stream.rel, key_names)
        out_width = (len(key_names) + len(agg_names)) * 8.0

        already_partitioned = bool(set(key_names) & stream.partition_cols)
        if already_partitioned:
            # Input partitioned on a group key: single-phase local agg.
            final = PhysAggregate(
                child=stream.node,
                group_keys=keys,
                aggregates=aggregates,
                agg_names=agg_names,
                mode=AggMode.SINGLE,
            )
            final.est_rows = groups
            final.est_bytes = groups * out_width
            rel = EstimatedRelation(
                rows=groups,
                ndv={name: min(groups, stream.rel.ndv.get(name, groups)) for name in key_names},
                width_bytes=out_width,
                tables=stream.rel.tables,
            )
            for name in agg_names:
                rel.ndv[name] = groups
            return self._apply_having(
                query, _Stream(final, rel, stream.partition_cols)
            )

        partial = PhysAggregate(
            child=stream.node,
            group_keys=keys,
            aggregates=aggregates,
            agg_names=agg_names,
            mode=AggMode.PARTIAL,
        )
        partial.est_rows = min(stream.rel.rows, groups * REFERENCE_DOP)
        partial.est_bytes = partial.est_rows * out_width

        partial_rel = EstimatedRelation(
            rows=partial.est_rows,
            ndv=dict(stream.rel.ndv),
            width_bytes=out_width,
            tables=stream.rel.tables,
        )
        if key_names:
            exchange = self._exchange(
                partial, partial_rel, ExchangeKind.SHUFFLE, keys=(key_names[0],)
            )
            partition_cols = frozenset([key_names[0]])
        else:
            exchange = self._exchange(partial, partial_rel, ExchangeKind.GATHER)
            partition_cols = frozenset()

        final = PhysAggregate(
            child=exchange,
            group_keys=keys,
            aggregates=aggregates,
            agg_names=agg_names,
            mode=AggMode.FINAL,
        )
        final.est_rows = groups
        final.est_bytes = groups * out_width
        rel = EstimatedRelation(
            rows=groups,
            ndv={name: min(groups, stream.rel.ndv.get(name, groups)) for name in key_names},
            width_bytes=out_width,
            tables=stream.rel.tables,
        )
        for name in agg_names:
            rel.ndv[name] = groups
        stream = _Stream(final, rel, partition_cols)
        return self._apply_having(query, stream)

    def _apply_having(self, query: BoundQuery, stream: _Stream) -> _Stream:
        if query.having is None:
            return stream
        node = PhysFilter(child=stream.node, predicate=query.having)
        rel = replace(stream.rel, rows=stream.rel.rows * DEFAULT_SELECTIVITY)
        node.est_rows = rel.rows
        node.est_bytes = rel.bytes
        return _Stream(node, rel, stream.partition_cols)

    # ------------------------------------------------------------------ #
    # Projection, distinct, ordering
    # ------------------------------------------------------------------ #
    def _plan_projection(self, query: BoundQuery, stream: _Stream) -> _Stream:
        exprs = tuple(query.select_exprs)
        names = tuple(query.select_names)
        # Skip the projection when it is an identity over current columns.
        if all(
            isinstance(e, ColumnRef) and e.name == n for e, n in zip(exprs, names)
        ) and len(exprs) == len(stream.node.output_columns()):
            return stream
        node = PhysProject(child=stream.node, exprs=exprs, names=names)
        width = len(names) * 8.0
        rel = EstimatedRelation(
            rows=stream.rel.rows,
            ndv={name: stream.rel.rows for name in names},
            width_bytes=width,
            tables=stream.rel.tables,
        )
        for expr, name in zip(exprs, names):
            if isinstance(expr, ColumnRef) and expr.name in stream.rel.ndv:
                rel.ndv[name] = stream.rel.ndv[expr.name]
        node.est_rows = rel.rows
        node.est_bytes = rel.bytes
        partition = stream.partition_cols & frozenset(names)
        return _Stream(node, rel, partition)

    def _plan_distinct(self, query: BoundQuery, stream: _Stream) -> _Stream:
        if not query.distinct:
            return stream
        names = tuple(query.select_names)
        keys = tuple(ColumnRef(name=n) for n in names)
        groups = self.estimator.group_count(stream.rel, names)
        node = PhysAggregate(
            child=stream.node,
            group_keys=keys,
            aggregates=(),
            agg_names=(),
            mode=AggMode.SINGLE,
        )
        node.est_rows = groups
        node.est_bytes = groups * stream.rel.width_bytes
        rel = replace(stream.rel, rows=groups)
        return _Stream(node, rel, stream.partition_cols)

    def _plan_order_and_limit(self, query: BoundQuery, stream: _Stream) -> _Stream:
        node = stream.node
        rel = stream.rel
        if query.order_by:
            keys = tuple(name for name, _ in query.order_by)
            ascending = tuple(asc for _, asc in query.order_by)
            sort = PhysSort(
                child=node, keys=keys, ascending=ascending, limit=query.limit
            )
            rows = rel.rows if query.limit is None else min(rel.rows, float(query.limit))
            sort.est_rows = rows
            sort.est_bytes = rows * rel.width_bytes
            rel = replace(rel, rows=rows)
            return _Stream(sort, rel, stream.partition_cols)
        if query.limit is not None:
            limit = PhysLimit(child=node, limit=query.limit)
            rows = min(rel.rows, float(query.limit))
            limit.est_rows = rows
            limit.est_bytes = rows * rel.width_bytes
            rel = replace(rel, rows=rows)
            return _Stream(limit, rel, stream.partition_cols)
        return stream

    def _gather(self, stream: _Stream) -> _Stream:
        node = self._exchange(stream.node, stream.rel, ExchangeKind.GATHER)
        return _Stream(node, stream.rel, frozenset())
