"""DAG planning: the classical cost-based optimizer stage.

The paper separates *DAG planning* (traditional query optimization
producing an execution DAG) from *DOP planning* (per-pipeline parallelism)
— this package is the former: cardinality estimation, join ordering,
physical operator selection, exchange placement, and the bushy-variant
generator that the DOP-planning stage explores (§3.2).
"""

from repro.optimizer.cardinality import CardinalityEstimator, EstimatedRelation
from repro.optimizer.join_order import JoinTree, Leaf, order_joins
from repro.optimizer.dag_planner import DagPlanner
from repro.optimizer.bushy import bushy_variants

__all__ = [
    "CardinalityEstimator",
    "EstimatedRelation",
    "JoinTree",
    "Leaf",
    "order_joins",
    "DagPlanner",
    "bushy_variants",
]
