"""Cardinality estimation from catalog statistics.

Classical, explainable estimators (paper §3.1 argues for explainability
over black-box accuracy): histogram selectivities with independence
across conjuncts, containment-based equi-join estimation, and NDV-based
group counts.  All estimates flow through :class:`EstimatedRelation`,
which tracks row count, per-column NDV, and row width so that multi-way
joins and aggregations compose.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.catalog.catalog import Catalog, TableEntry
from repro.catalog.statistics import ColumnStats
from repro.errors import EstimationError
from repro.plan.expressions import (
    BinaryOp,
    ColumnRef,
    Expr,
    InList,
    Literal,
    UnaryOp,
    conjuncts,
)
from repro.plan.predicates import extract_column_ranges
from repro.sql.binder import JoinEdge

#: Fallback selectivity for predicates the estimator cannot analyze.
DEFAULT_SELECTIVITY = 0.33


@dataclass
class EstimatedRelation:
    """An estimated intermediate result."""

    rows: float
    ndv: dict[str, float] = field(default_factory=dict)
    width_bytes: float = 0.0
    tables: frozenset[str] = frozenset()

    @property
    def bytes(self) -> float:
        return self.rows * self.width_bytes

    def column_ndv(self, name: str) -> float:
        try:
            return max(1.0, min(self.ndv[name], self.rows))
        except KeyError:
            raise EstimationError(f"no NDV tracked for column {name!r}") from None


class CardinalityEstimator:
    """Estimates cardinalities for scans, joins, and aggregations."""

    def __init__(self, catalog: Catalog) -> None:
        self.catalog = catalog

    # ------------------------------------------------------------------ #
    # Selectivity of predicates on a single base table
    # ------------------------------------------------------------------ #
    def selectivity(self, table: str, predicate: Expr | None) -> float:
        """Combined selectivity of a predicate on a base table.

        Conjuncts multiply (attribute-independence assumption — the
        standard, explainable, and famously imperfect choice; the DOP
        monitor exists to absorb exactly these errors).
        """
        if predicate is None:
            return 1.0
        entry = self.catalog.table(table)
        result = 1.0
        for conjunct in conjuncts(predicate):
            result *= self._conjunct_selectivity(entry, conjunct)
        return max(0.0, min(1.0, result))

    def _conjunct_selectivity(self, entry: TableEntry, expr: Expr) -> float:
        if isinstance(expr, BinaryOp) and expr.op == "or":
            left = self._conjunct_selectivity(entry, expr.left)
            right = self._conjunct_selectivity(entry, expr.right)
            return min(1.0, left + right - left * right)
        if isinstance(expr, UnaryOp) and expr.op == "not":
            return 1.0 - self._conjunct_selectivity(entry, expr.operand)
        if isinstance(expr, InList):
            return self._in_list_selectivity(entry, expr)
        simple = self._simple_comparison(expr)
        if simple is not None:
            column, op, value = simple
            return self._comparison_selectivity(entry, column, op, value)
        return DEFAULT_SELECTIVITY

    @staticmethod
    def _simple_comparison(expr: Expr) -> tuple[str, str, float] | None:
        if not isinstance(expr, BinaryOp):
            return None
        if expr.op not in ("=", "<>", "<", "<=", ">", ">="):
            return None
        left, right = expr.left, expr.right
        if isinstance(left, ColumnRef) and isinstance(right, Literal):
            if isinstance(right.value, str):
                return None
            return (left.name, expr.op, float(right.value))
        if isinstance(left, Literal) and isinstance(right, ColumnRef):
            if isinstance(left.value, str):
                return None
            flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "=": "=", "<>": "<>"}
            return (right.name, flipped[expr.op], float(left.value))
        return None

    def _comparison_selectivity(
        self, entry: TableEntry, column: str, op: str, value: float
    ) -> float:
        if not entry.stats.has_column(column):
            return DEFAULT_SELECTIVITY
        stats = entry.stats.column(column)
        histogram = stats.histogram
        if histogram is None or stats.row_count == 0:
            return DEFAULT_SELECTIVITY
        if op == "=":
            return histogram.selectivity_eq(value, stats.ndv)
        if op == "<>":
            return 1.0 - histogram.selectivity_eq(value, stats.ndv)
        if op in ("<", "<="):
            return histogram.selectivity_le(value)
        if op in (">", ">="):
            return 1.0 - histogram.selectivity_le(value)
        raise EstimationError(f"unexpected comparison operator {op!r}")

    def _in_list_selectivity(self, entry: TableEntry, expr: InList) -> float:
        if not isinstance(expr.operand, ColumnRef):
            return DEFAULT_SELECTIVITY
        column = expr.operand.name
        if not entry.stats.has_column(column):
            return DEFAULT_SELECTIVITY
        stats = entry.stats.column(column)
        histogram = stats.histogram
        if histogram is None:
            selectivity = min(1.0, len(expr.values) / max(1, stats.ndv))
        else:
            selectivity = min(
                1.0,
                sum(
                    histogram.selectivity_eq(float(v), stats.ndv)
                    for v in expr.values
                    if not isinstance(v, str)
                ),
            )
        return 1.0 - selectivity if expr.negated else selectivity

    # ------------------------------------------------------------------ #
    # Base relations
    # ------------------------------------------------------------------ #
    def base_relation(
        self,
        table: str,
        predicate: Expr | None,
        columns: tuple[str, ...],
    ) -> EstimatedRelation:
        """Estimated output of scanning ``table`` with pushed filters."""
        entry = self.catalog.table(table)
        selectivity = self.selectivity(table, predicate)
        rows = entry.row_count * selectivity
        ndv: dict[str, float] = {}
        width = 0.0
        for name in columns:
            column = entry.schema.column(name)
            width += column.dtype.width_bytes
            base_ndv = (
                entry.stats.column(name).ndv
                if entry.stats.has_column(name)
                else entry.row_count
            )
            ndv[name] = _filtered_ndv(base_ndv, entry.row_count, selectivity)
        return EstimatedRelation(
            rows=rows, ndv=ndv, width_bytes=width, tables=frozenset([table])
        )

    def scan_partition_fraction(self, table: str, predicate: Expr | None) -> float:
        """Estimated fraction of micro-partitions read after pruning.

        Pruning is only predictable on the clustering key: a range
        covering fraction ``s`` of a well-clustered domain touches about
        ``s + depth`` of the partitions.  Other columns assume no pruning.
        """
        entry = self.catalog.table(table)
        key = entry.schema.clustering_key
        if key is None or predicate is None:
            return 1.0
        ranges = extract_column_ranges(predicate)
        key_range = ranges.get(key)
        if key_range is None:
            return 1.0
        if not entry.stats.has_column(key):
            return 1.0
        stats = entry.stats.column(key)
        histogram = stats.histogram
        if histogram is None:
            return 1.0
        coverage = histogram.selectivity_range(key_range.lo, key_range.hi)
        return min(1.0, coverage + entry.clustering_depth)

    # ------------------------------------------------------------------ #
    # Joins and aggregation
    # ------------------------------------------------------------------ #
    def join(
        self,
        left: EstimatedRelation,
        right: EstimatedRelation,
        edges: list[JoinEdge],
    ) -> EstimatedRelation:
        """Containment-based inner equi-join estimate.

        Each key pair contributes ``1 / max(ndv_l, ndv_r)``; multiple
        edges multiply under independence.
        """
        if not edges:
            raise EstimationError("cross joins are not estimated")
        rows = left.rows * right.rows
        for edge in edges:
            l_col, r_col = self._orient(edge, left, right)
            ndv_l = left.column_ndv(l_col)
            ndv_r = right.column_ndv(r_col)
            rows /= max(ndv_l, ndv_r, 1.0)
        rows = max(rows, 0.0)
        ndv: dict[str, float] = {}
        out_rows = max(rows, 1.0)
        for name, value in {**left.ndv, **right.ndv}.items():
            ndv[name] = min(value, out_rows)
        return EstimatedRelation(
            rows=rows,
            ndv=ndv,
            width_bytes=left.width_bytes + right.width_bytes,
            tables=left.tables | right.tables,
        )

    @staticmethod
    def _orient(
        edge: JoinEdge, left: EstimatedRelation, right: EstimatedRelation
    ) -> tuple[str, str]:
        l_table, r_table = edge.tables()
        if l_table in left.tables and r_table in right.tables:
            return (edge.left.name, edge.right.name)
        if r_table in left.tables and l_table in right.tables:
            return (edge.right.name, edge.left.name)
        raise EstimationError(
            f"join edge {edge} does not connect {sorted(left.tables)} and "
            f"{sorted(right.tables)}"
        )

    def group_count(
        self, relation: EstimatedRelation, keys: tuple[str, ...]
    ) -> float:
        """Estimated number of groups for a GROUP BY."""
        if not keys:
            return 1.0
        groups = 1.0
        for key in keys:
            groups *= relation.column_ndv(key)
        return min(groups, max(relation.rows, 1.0))


def _filtered_ndv(base_ndv: float, base_rows: int, selectivity: float) -> float:
    """NDV surviving a filter (Yao's approximation, cheap closed form).

    With ``r`` rows uniformly spread over ``d`` values, keeping fraction
    ``s`` of rows keeps about ``d * (1 - (1 - s)^(r/d))`` distinct values.
    """
    if base_rows <= 0 or base_ndv <= 0:
        return 1.0
    rows_per_value = max(1.0, base_rows / base_ndv)
    survived = base_ndv * (1.0 - (1.0 - selectivity) ** rows_per_value)
    return max(1.0, min(survived, base_ndv))
