"""Bushy join-plan variants (paper §3.2).

The paper proposes exploring bushy plans *after* DAG planning: take the
left-deep plan, reorganize the join shape into a series of increasingly
bushier variants whose reshaped joins are bounded (non-expanding), then
let DOP planning cost each variant under the user's constraint.  Bushier
plans expose more concurrent pipelines (lower latency potential) at the
price of more total machine time.

This module generates the variants; ranking them is the bi-objective
optimizer's job (:mod:`repro.core.bioptimizer`).
"""

from __future__ import annotations

from repro.errors import OptimizerError
from repro.optimizer.cardinality import CardinalityEstimator, EstimatedRelation
from repro.optimizer.join_order import (
    JoinTree,
    Leaf,
    connecting_edges,
    linearize,
)
from repro.sql.binder import JoinEdge


def estimate_tree(
    tree: JoinTree | Leaf,
    base_relations: dict[str, EstimatedRelation],
    estimator: CardinalityEstimator,
) -> EstimatedRelation:
    """Estimated output relation of a join tree."""
    if isinstance(tree, Leaf):
        return base_relations[tree.table]
    left = estimate_tree(tree.left, base_relations, estimator)
    right = estimate_tree(tree.right, base_relations, estimator)
    return estimator.join(left, right, list(tree.edges))


def bushiness(tree: JoinTree | Leaf) -> int:
    """Number of join nodes whose children are *both* join nodes.

    0 for left-deep trees; grows as the tree becomes balanced.
    """
    if isinstance(tree, Leaf):
        return 0
    own = int(isinstance(tree.left, JoinTree) and isinstance(tree.right, JoinTree))
    return own + bushiness(tree.left) + bushiness(tree.right)


def tree_depth(tree: JoinTree | Leaf) -> int:
    if isinstance(tree, Leaf):
        return 0
    return 1 + max(tree_depth(tree.left), tree_depth(tree.right))


def bushy_variants(
    tree: JoinTree | Leaf,
    base_relations: dict[str, EstimatedRelation],
    edges: list[JoinEdge],
    estimator: CardinalityEstimator,
    *,
    expansion_limit: float = 2.0,
    max_variants: int = 8,
) -> list[JoinTree | Leaf]:
    """Generate increasingly bushy variants of a (left-deep) join tree.

    Variants are produced by cutting the linear join order into connected
    halves joined at the top (single cut), and by recursively balancing
    both halves.  A variant is kept only when every reshaped subtree join
    is *bounded*: its output is at most ``expansion_limit`` times the
    larger input (the paper's "non-expanding joins" guard).  The original
    tree is always variant 0; the list is sorted by increasing bushiness.
    """
    order = linearize(tree)
    variants: list[JoinTree | Leaf] = [tree]
    seen: set[tuple | str] = {_tree_key(tree)}

    def try_add(candidate: JoinTree | Leaf | None) -> None:
        if candidate is None:
            return
        key = _tree_key(candidate)
        if key in seen:
            return
        if not _bounded(candidate, base_relations, estimator, expansion_limit):
            return
        seen.add(key)
        variants.append(candidate)

    # Single-cut variants: ((prefix) ⋈ (suffix)).
    for cut in range(2, len(order) - 1):
        try_add(_join_halves(order[:cut], order[cut:], edges))

    # Fully balanced recursive variant.
    try_add(_balanced(order, edges))

    variants.sort(key=lambda t: (bushiness(t), -tree_depth(t)))
    return variants[:max_variants]


# ---------------------------------------------------------------------- #
# Construction helpers
# ---------------------------------------------------------------------- #
def _tree_key(tree: JoinTree | Leaf) -> tuple | str:
    """Structural identity of a join shape for dedup.

    Nested tuples of table names — hashes far cheaper than the
    ``describe()`` strings it replaces, which showed up hot in the
    optimize profile (string building per candidate per query).
    """
    if isinstance(tree, Leaf):
        return tree.table
    return (_tree_key(tree.left), _tree_key(tree.right))


def _join_halves(
    left_tables: list[str], right_tables: list[str], edges: list[JoinEdge]
) -> JoinTree | None:
    left = _left_deep(left_tables, edges)
    right = _left_deep(right_tables, edges)
    if left is None or right is None:
        return None
    top_edges = connecting_edges(edges, left.tables(), right.tables())
    if not top_edges:
        return None
    return JoinTree(left=left, right=right, edges=top_edges)


def _left_deep(tables: list[str], edges: list[JoinEdge]) -> JoinTree | Leaf | None:
    """Left-deep tree over ``tables``; greedy-reorders to stay connected."""
    if not tables:
        return None
    remaining = list(tables)
    tree: JoinTree | Leaf = Leaf(remaining.pop(0))
    while remaining:
        for index, table in enumerate(remaining):
            joining = connecting_edges(edges, tree.tables(), frozenset([table]))
            if joining:
                tree = JoinTree(left=tree, right=Leaf(table), edges=joining)
                remaining.pop(index)
                break
        else:
            return None  # disconnected within this half
    return tree


def _balanced(order: list[str], edges: list[JoinEdge]) -> JoinTree | Leaf | None:
    """Recursively balanced tree over the linear order, if connected."""
    if len(order) == 1:
        return Leaf(order[0])
    if len(order) == 2:
        return _left_deep(order, edges)
    mid = len(order) // 2
    left = _balanced(order[:mid], edges)
    right = _balanced(order[mid:], edges)
    if left is None or right is None:
        # Fall back to a single cut at the midpoint.
        return _join_halves(order[:mid], order[mid:], edges)
    top_edges = connecting_edges(edges, left.tables(), right.tables())
    if not top_edges:
        return None
    return JoinTree(left=left, right=right, edges=top_edges)


def _bounded(
    tree: JoinTree | Leaf,
    base_relations: dict[str, EstimatedRelation],
    estimator: CardinalityEstimator,
    expansion_limit: float,
) -> bool:
    """Check every join in ``tree`` is non-expanding within the limit."""
    try:
        return _bounded_inner(tree, base_relations, estimator, expansion_limit) is not None
    except OptimizerError:
        return False


def _bounded_inner(
    tree: JoinTree | Leaf,
    base_relations: dict[str, EstimatedRelation],
    estimator: CardinalityEstimator,
    expansion_limit: float,
) -> EstimatedRelation | None:
    if isinstance(tree, Leaf):
        return base_relations[tree.table]
    left = _bounded_inner(tree.left, base_relations, estimator, expansion_limit)
    right = _bounded_inner(tree.right, base_relations, estimator, expansion_limit)
    if left is None or right is None:
        return None
    joined = estimator.join(left, right, list(tree.edges))
    if joined.rows > expansion_limit * max(left.rows, right.rows, 1.0):
        return None
    return joined
