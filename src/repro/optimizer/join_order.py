"""Join ordering: dynamic programming over the query's join graph.

The DAG-planning stage uses left-deep DP by default (the paper notes
bushy joins "are usually ignored in traditional optimizers ... to reduce
the search space"); an exhaustive (all-shapes) DP is available for tests
and for quantifying what the left-deep restriction gives up.  Cost metric
is C_out — the sum of intermediate result cardinalities — the standard
metric when join order quality is what matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.errors import OptimizerError
from repro.optimizer.cardinality import CardinalityEstimator, EstimatedRelation
from repro.sql.binder import JoinEdge


@dataclass(frozen=True)
class Leaf:
    """A base relation in the join tree."""

    table: str

    def tables(self) -> frozenset[str]:
        return frozenset([self.table])

    def describe(self) -> str:
        return self.table


@dataclass(frozen=True)
class JoinTree:
    """An inner node: join of two subtrees on ``edges``."""

    left: "JoinTree | Leaf"
    right: "JoinTree | Leaf"
    edges: tuple[JoinEdge, ...]

    def tables(self) -> frozenset[str]:
        return self.left.tables() | self.right.tables()

    def describe(self) -> str:
        return f"({self.left.describe()} ⋈ {self.right.describe()})"


def connecting_edges(
    edges: list[JoinEdge], left: frozenset[str], right: frozenset[str]
) -> tuple[JoinEdge, ...]:
    """Edges with one endpoint in each side."""
    found = []
    for edge in edges:
        a, b = edge.tables()
        if (a in left and b in right) or (b in left and a in right):
            found.append(edge)
    return tuple(found)


def order_joins(
    base_relations: dict[str, EstimatedRelation],
    edges: list[JoinEdge],
    estimator: CardinalityEstimator,
    *,
    left_deep_only: bool = True,
) -> tuple[JoinTree | Leaf, float]:
    """Find the C_out-optimal join tree.

    Returns ``(tree, c_out_cost)``.  ``left_deep_only`` restricts the DP
    to left-deep shapes (default, matching the paper's DAG-planning
    stage); with ``False`` the full bushy space is searched — exponential,
    fine for the ≤8-relation queries in the workloads.
    """
    tables = sorted(base_relations)
    if not tables:
        raise OptimizerError("no relations to order")
    if len(tables) == 1:
        return Leaf(tables[0]), 0.0

    _check_connected(tables, edges)

    # DP state per table subset: (accumulated C_out, estimated relation, tree)
    best: dict[frozenset[str], tuple[float, EstimatedRelation, JoinTree | Leaf]] = {}
    for table in tables:
        singleton = frozenset([table])
        best[singleton] = (0.0, base_relations[table], Leaf(table))

    full = frozenset(tables)
    for size in range(2, len(tables) + 1):
        for subset_tuple in combinations(tables, size):
            subset = frozenset(subset_tuple)
            candidate: tuple[float, EstimatedRelation, JoinTree | Leaf] | None = None
            for split in _splits(subset, left_deep_only):
                left_set, right_set = split
                if left_set not in best or right_set not in best:
                    continue
                join_edges = connecting_edges(edges, left_set, right_set)
                if not join_edges:
                    continue
                left_cost, left_rel, left_tree = best[left_set]
                right_cost, right_rel, right_tree = best[right_set]
                joined = estimator.join(left_rel, right_rel, list(join_edges))
                cost = left_cost + right_cost + joined.rows
                if candidate is None or cost < candidate[0]:
                    candidate = (
                        cost,
                        joined,
                        JoinTree(left=left_tree, right=right_tree, edges=join_edges),
                    )
            if candidate is not None:
                best[subset] = candidate

    if full not in best:
        raise OptimizerError("join graph admits no connected join order")
    cost, _, tree = best[full]
    return tree, cost


def _splits(subset: frozenset[str], left_deep_only: bool):
    """Yield (left, right) partitions of ``subset``.

    Left-deep mode peels exactly one relation into the right side; the
    full mode enumerates all proper bipartitions (canonicalized so each
    unordered pair appears once).
    """
    members = sorted(subset)
    if left_deep_only:
        for table in members:
            right = frozenset([table])
            left = subset - right
            yield (left, right)
        return
    anchor = members[0]
    rest = members[1:]
    for r in range(0, len(rest) + 1):
        for chosen in combinations(rest, r):
            left = frozenset([anchor, *chosen])
            right = subset - left
            if right:
                yield (left, right)


def _check_connected(tables: list[str], edges: list[JoinEdge]) -> None:
    remaining = set(tables)
    frontier = {tables[0]}
    remaining.discard(tables[0])
    while frontier:
        current = frontier.pop()
        for edge in edges:
            a, b = edge.tables()
            neighbor = None
            if a == current and b in remaining:
                neighbor = b
            elif b == current and a in remaining:
                neighbor = a
            if neighbor is not None:
                remaining.discard(neighbor)
                frontier.add(neighbor)
    if remaining:
        raise OptimizerError(
            f"join graph is disconnected; unreachable tables: {sorted(remaining)}"
        )


def linearize(tree: JoinTree | Leaf) -> list[str]:
    """Left-to-right base-table order of a join tree (for tests/reports)."""
    if isinstance(tree, Leaf):
        return [tree.table]
    return linearize(tree.left) + linearize(tree.right)
