"""Logical expression rewrites: constant folding and simplification.

Small, deterministic rewrites applied before planning.  Predicate
*placement* (pushdown) already happens structurally in the binder, which
assigns conjuncts to their tables; these rewrites clean up the
expressions themselves.
"""

from __future__ import annotations

from repro.plan.expressions import (
    ARITHMETIC_OPS,
    BinaryOp,
    ColumnRef,
    Expr,
    FuncCall,
    InList,
    Literal,
    UnaryOp,
)


def fold_constants(expr: Expr) -> Expr:
    """Evaluate constant subtrees (``1 - 0.06`` -> ``0.94``)."""
    if isinstance(expr, BinaryOp):
        left = fold_constants(expr.left)
        right = fold_constants(expr.right)
        if (
            expr.op in ARITHMETIC_OPS
            and isinstance(left, Literal)
            and isinstance(right, Literal)
            and not isinstance(left.value, str)
            and not isinstance(right.value, str)
        ):
            return Literal(_apply(expr.op, float(left.value), float(right.value)))
        return BinaryOp(expr.op, left, right)
    if isinstance(expr, UnaryOp):
        operand = fold_constants(expr.operand)
        if (
            expr.op == "-"
            and isinstance(operand, Literal)
            and not isinstance(operand.value, str)
        ):
            return Literal(-operand.value)
        return UnaryOp(expr.op, operand)
    if isinstance(expr, FuncCall):
        return FuncCall(expr.name, tuple(fold_constants(a) for a in expr.args))
    if isinstance(expr, InList):
        return InList(fold_constants(expr.operand), expr.values, expr.negated)
    return expr


def _apply(op: str, left: float, right: float) -> float:
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "/":
        return left / right
    raise AssertionError(f"not an arithmetic op: {op}")


def simplify_predicate(expr: Expr | None) -> Expr | None:
    """Drop trivially-true conjuncts; collapse trivially-false ones.

    Recognizes the binder's canonical always-true (``col >= -1``) and
    always-false (``col < -1``) markers produced for out-of-dictionary
    string comparisons.
    """
    if expr is None:
        return None
    from repro.plan.expressions import conjuncts, make_and

    kept: list[Expr] = []
    for conjunct in conjuncts(expr):
        verdict = _trivial_verdict(conjunct)
        if verdict is True:
            continue
        if verdict is False:
            return conjunct  # whole predicate is unsatisfiable; keep marker
        kept.append(conjunct)
    return make_and(kept)


def _trivial_verdict(expr: Expr) -> bool | None:
    """True/False when the conjunct is trivially decidable, else None."""
    if not isinstance(expr, BinaryOp):
        return None
    if not (isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal)):
        return None
    value = expr.right.value
    if isinstance(value, str):
        return None
    # Dictionary codes and our key domains are always >= 0.
    if expr.op == ">=" and float(value) < 0:
        return True
    if expr.op == "<" and float(value) < 0:
        return False
    return None
