"""Multi-tenant budgets: one tenant runs dry mid-batch, the other proceeds.

Admission control closes the loop between billing and serving: every
tenant's TenantBill (serving + background tuning dollars) is checked
against its TenantBudget at admission time, and verdicts escalate as
spend approaches the ceiling — ADMIT, then THROTTLE (no batch
parallelism), then DEFER (pushed behind the rest of the batch and
re-checked), then DENY (a typed AdmissionDeniedError on a handle in the
DENIED terminal state).  Crucially, one tenant exhausting its budget
never fails another tenant's in-flight work: with fail_fast=False each
denial is reported on its own handle while the rest of the batch serves.

Run:  python examples/multi_tenant_budgets.py
"""

from repro import (
    AdmissionDeniedError,
    CostIntelligentWarehouse,
    QueryRequest,
    TenantBudget,
    sla_constraint,
)
from repro.workloads.tpch_queries import instantiate
from repro.workloads.tpch_stats import synthetic_tpch_catalog


def request(name: str, seed: int, tenant: str) -> QueryRequest:
    return QueryRequest(
        sql=instantiate(name, seed=seed),
        template=name,
        tenant=tenant,
        simulate=False,  # plan + price only: the bill is what matters here
    )


def main() -> None:
    print("Building a stats-only TPC-H warehouse (SF 1)...")
    warehouse = CostIntelligentWarehouse(catalog=synthetic_tpch_catalog(1.0))
    session = warehouse.session(tenant="finance", constraint=sla_constraint(15.0))

    # Calibrate a tight budget for finance: serve one probe query, then
    # cap the tenant at ~2.5x that spend.  Marketing gets generous room.
    probe = session.submit(request("q6_revenue_forecast", seed=1, tenant="finance"))
    per_query = probe.result().dollars
    warehouse.admission.set_budget(
        "finance", TenantBudget(dollars=per_query * 2.5, throttle_at=0.5, defer_at=0.9)
    )
    warehouse.admission.set_budget("marketing", TenantBudget(dollars=per_query * 100))
    print(
        f"one query costs ~${per_query:.4f}; finance budget "
        f"${per_query * 2.5:.4f}, marketing budget ${per_query * 100:.4f}\n"
    )

    # One interleaved batch: finance will cross its ceiling mid-batch.
    items = []
    for seed in range(2, 8):
        items.append(request("q6_revenue_forecast", seed=seed, tenant="finance"))
        items.append(request("q1_pricing_summary", seed=seed, tenant="marketing"))
    handles = session.submit_many(items, fail_fast=False)

    print("=== batch outcomes (submission order) ===")
    for handle in handles:
        tenant = handle.request.tenant
        verdict = handle.admission.value if handle.admission else "-"
        line = f"  #{handle.index:<2} {tenant:<10} [{handle.state.value:<7}] verdict={verdict}"
        if handle.denied:
            assert isinstance(handle.error, AdmissionDeniedError)
            line += (
                f"  (${handle.error.spent_dollars:.4f} spent "
                f"of ${handle.error.budget_dollars:.4f})"
            )
        print(line)

    finance_states = [h.state.value for h in handles if h.request.tenant == "finance"]
    marketing_ok = all(
        not h.denied and not h.failed
        for h in handles
        if h.request.tenant == "marketing"
    )
    print(f"\nfinance lifecycle across the batch: {finance_states}")
    print(f"every marketing query served: {marketing_ok}")
    assert marketing_ok, "a tenant budget must never fail another tenant's batch"
    assert any(h.denied for h in handles), "finance should have run dry mid-batch"

    print("\n=== admission ledger ===")
    print(warehouse.admission.describe())
    print("\n=== billing ===")
    print(warehouse.describe_billing())


if __name__ == "__main__":
    main()
