"""Quickstart: open a session, state an SLA, get results plus a cost report.

The user never picks a cluster size (no Figure-1 "T-shirt" menu): they
open a per-tenant Session, state a latency SLA once as the session
default, and submit frozen QueryRequests.  Each submission returns a
QueryHandle whose lifecycle runs QUEUED -> BOUND -> PLANNED -> SIMULATED
-> DONE with per-stage timings; result() yields the QueryOutcome with
the plan, the real rows (executed locally here), and auditable dollars —
which also roll up into the warehouse's per-tenant billing.

Run:  python examples/quickstart.py
"""

from repro import CostIntelligentWarehouse, QueryRequest, load_tpch, sla_constraint
from repro.dop import budget_constraint


def main() -> None:
    print("Loading TPC-H-like data (scale factor 0.01)...")
    database = load_tpch(scale_factor=0.01, cluster_keys={"lineitem": "l_shipdate"})
    warehouse = CostIntelligentWarehouse(database=database)
    session = warehouse.session(tenant="analyst", constraint=sla_constraint(10.0))

    sql = (
        "SELECT l_returnflag, l_linestatus, "
        "sum(l_quantity) AS sum_qty, "
        "sum(l_extendedprice * (1 - l_discount)) AS revenue, "
        "count(*) AS count_order "
        "FROM lineitem WHERE l_shipdate <= DATE '1998-09-02' "
        "GROUP BY l_returnflag, l_linestatus "
        "ORDER BY l_returnflag, l_linestatus"
    )
    print(f"\nSubmitting under the session's 10-second latency SLA:\n  {sql}\n")
    handle = session.submit(QueryRequest(sql=sql, execute_locally=True))
    print(f"lifecycle: {handle.describe()}\n")
    outcome = handle.result()

    print("=== query result ===")
    batch = outcome.batch
    assert batch is not None
    flags = database.decode_strings("lineitem", "l_returnflag", batch.column("l_returnflag"))
    statuses = database.decode_strings("lineitem", "l_linestatus", batch.column("l_linestatus"))
    for i in range(batch.num_rows):
        print(
            f"  {flags[i]} {statuses[i]}  qty={batch.column('sum_qty')[i]:>12,.0f}"
            f"  revenue={batch.column('revenue')[i]:>18,.2f}"
            f"  orders={batch.column('count_order')[i]:>8,d}"
        )

    print("\n=== physical plan (DOP per pipeline) ===")
    print(outcome.choice.dag.describe())
    print("\n=== cost report ===")
    print(outcome.describe())
    print(f"\nSLA honored: {outcome.constraint_met}")

    budget = 0.001
    print(f"\nResubmitting under a ${budget} budget instead:")
    budgeted = session.submit(
        QueryRequest(sql=sql, constraint=budget_constraint(budget))
    ).result()
    print(
        f"  latency={budgeted.latency:.2f}s cost=${budgeted.dollars:.5f}"
        f"  budget honored: {budgeted.constraint_met}"
    )

    print(f"\ntenant '{session.tenant}' spent ${session.dollars_spent:.5f}")
    print(warehouse.describe_billing())


if __name__ == "__main__":
    main()
