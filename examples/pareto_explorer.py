"""Figure 2 as an executable: sweep configurations, print the frontier.

For one workload, evaluates every T-shirt warehouse size, marks which
are Pareto-dominated, and shows where the bi-objective optimizer lands
for a few SLAs — an ASCII rendition of the paper's Figure 2.  The
T-shirt ladder is costed directly with the estimator (there is no
serving involved in a fixed-size menu); the SLA points are QueryRequests
submitted through a Session, i.e. the real serving path.

Run:  python examples/pareto_explorer.py
"""

from repro import (
    Binder,
    CostEstimator,
    CostIntelligentWarehouse,
    QueryRequest,
    synthetic_tpch_catalog,
)
from repro.baselines.tshirt import uniform_dops
from repro.compute.pricing import TSHIRT_SIZES
from repro.dop import sla_constraint
from repro.optimizer.dag_planner import DagPlanner
from repro.plan.pipelines import decompose_pipelines
from repro.util.pareto import ParetoPoint, pareto_frontier
from repro.workloads import instantiate


def main() -> None:
    catalog = synthetic_tpch_catalog(100.0)
    estimator = CostEstimator()
    binder = Binder(catalog)
    planner = DagPlanner(catalog)
    sql = instantiate("q5_local_supplier", seed=1)
    dag = decompose_pipelines(planner.plan(binder.bind_sql(sql)))

    points = []
    for name, nodes in TSHIRT_SIZES.items():
        estimate = estimator.estimate_dag(dag, uniform_dops(dag, nodes))
        points.append(ParetoPoint(estimate.latency, estimate.total_dollars, name))
    frontier = {p.payload for p in pareto_frontier(points)}

    print("T-shirt sizes (fixed uniform DOP), * = on the Pareto frontier:\n")
    max_cost = max(p.dollars for p in points)
    for point in sorted(points, key=lambda p: p.latency):
        bar = "#" * max(1, int(40 * point.dollars / max_cost))
        marker = "*" if point.payload in frontier else " "
        print(
            f"  {marker} {point.payload:>4}  latency {point.latency:7.2f}s  "
            f"${point.dollars:.4f}  {bar}"
        )

    print("\nBi-objective optimizer (per-pipeline DOPs) under SLAs:\n")
    warehouse = CostIntelligentWarehouse(catalog=catalog, max_dop=128)
    session = warehouse.session(tenant="explorer")
    for sla in (30.0, 12.0, 6.0):
        handle = session.submit(
            QueryRequest(sql=sql, constraint=sla_constraint(sla), simulate=False)
        )
        estimate = handle.result().choice.dop_plan.estimate
        bar = "#" * max(1, int(40 * estimate.total_dollars / max_cost))
        print(
            f"  SLA {sla:5.1f}s -> latency {estimate.latency:7.2f}s  "
            f"${estimate.total_dollars:.4f}  {bar}"
        )
    print(
        "\nPer-pipeline DOP assignments reach (cost, latency) points the"
        " uniform T-shirt ladder cannot express."
    )


if __name__ == "__main__":
    main()
