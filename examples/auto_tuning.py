"""§4 demo: cost-oriented auto-tuning end to end.

Runs a recurring workload through the warehouse, lets the Statistics
Service accumulate logs, and asks the warehouse's persistent
``TuningService`` for typed recommendations.  Each recommendation
carries a customer-readable dollar report (savings x vs cost y, with
break-even horizon) plus the candidate object itself — no string
parsing anywhere.  Accepted actions are applied physically on
background compute (spend metered per tenant); a query from the same
family is then served *from the view* and verifiably returns identical
results, after which one action is rolled back to show that tuning is
reversible, restoring the pre-tuning catalog bit-for-bit.

Run:  python examples/auto_tuning.py
"""

import numpy as np

from repro import (
    CostIntelligentWarehouse,
    MaterializeView,
    QueryRequest,
    load_tpch,
    sla_constraint,
)
from repro.workloads import instantiate


def main() -> None:
    print("Loading TPC-H-like data (scale factor 0.01)...")
    database = load_tpch(scale_factor=0.01)
    warehouse = CostIntelligentWarehouse(database=database)
    session = warehouse.session(tenant="reporting", constraint=sla_constraint(20.0))

    print("Running a recurring reporting workload (24 queries)...")
    requests = []
    t = 0.0
    for i in range(8):
        for template in ("q5_local_supplier", "q12_shipmode", "q14_promo_effect"):
            requests.append(
                QueryRequest(
                    sql=instantiate(template, seed=i),
                    template=template,
                    at_time=t,
                    simulate=(i < 2),  # simulate a few; estimates for the rest
                )
            )
            t += 450.0
    session.submit_many(requests)
    print(
        f"tenant '{session.tenant}' spent ${session.dollars_spent:.4f} across "
        f"{len(session.logs)} logged queries"
    )

    caches = warehouse.describe_caches()
    skeleton = caches["skeleton_cache"]
    print(
        f"planning caches: skeleton level served {skeleton['hits']} of the "
        f"{skeleton['hits'] + skeleton['misses']} literal-varying plans "
        f"({skeleton['hit_rate']:.0%} hit rate) without re-running join "
        "ordering"
    )

    print("\n=== tuning recommendations (What-If dollar reports) ===")
    service = warehouse.tuning
    recommendations = service.propose()
    for rec in recommendations:
        print(rec.report.describe())
    applied = service.apply_all()
    print(
        f"\napplied {len(applied)} of {len(recommendations)} recommendations "
        f"on background compute (${service.background_dollars:.4f}, metered "
        "to the originating tenants)"
    )
    print(warehouse.describe_billing())

    mvs = [rec for rec in applied if isinstance(rec.action, MaterializeView)]
    if mvs:
        rec = mvs[0]
        candidate = rec.action.candidate  # carried end-to-end, no parsing
        template = rec.report.impacts[0].template
        print(f"\n=== serving the {template} family from {candidate.name} ===")
        sql = instantiate(template, seed=1)
        outcome = session.submit(
            QueryRequest(sql=sql, execute_locally=True)
        ).result()
        print(
            f"served from tables {outcome.record.tables} at "
            f"${outcome.dollars:.6f}"
        )
        assert outcome.record.tables == (candidate.name,)

        # Cross-check: the view answers identically to the base tables.
        from repro.engine.local_executor import LocalExecutor
        from repro.optimizer.dag_planner import DagPlanner

        bound = warehouse.binder.bind_sql(sql)
        original = LocalExecutor(database).execute(
            DagPlanner(warehouse.catalog).plan(bound)
        ).batch
        metric = bound.select_names[-1]
        same = np.allclose(
            np.sort(original.column(metric)),
            np.sort(outcome.batch.column(metric)),
        )
        print(
            f"rows: base-tables={original.num_rows}, "
            f"via-MV={outcome.batch.num_rows}; metric {metric!r} "
            f"identical: {same}"
        )

        print(f"\n=== rolling {rec.action.name} back ===")
        service.rollback(rec)
        restored = session.submit(QueryRequest(sql=sql)).result()
        print(
            f"[{rec.state.value}] view dropped: "
            f"{not warehouse.catalog.has_view(candidate.name)}; the family "
            f"plans over {restored.record.tables} again"
        )


if __name__ == "__main__":
    main()
