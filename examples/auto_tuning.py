"""§4 demo: cost-oriented auto-tuning end to end.

Runs a recurring workload through the warehouse, lets the Statistics
Service accumulate logs, and asks the advisor for tuning proposals.  Each
proposal is a customer-readable dollar report (savings x vs cost y, with
break-even horizon).  Accepted actions are applied physically —
materialized views are actually built from the data and a query from the
same family verifiably returns identical results from the view.

Run:  python examples/auto_tuning.py
"""

import numpy as np

from repro import CostIntelligentWarehouse, QueryRequest, load_tpch, sla_constraint
from repro.workloads import instantiate


def main() -> None:
    print("Loading TPC-H-like data (scale factor 0.01)...")
    database = load_tpch(scale_factor=0.01)
    warehouse = CostIntelligentWarehouse(database=database)
    session = warehouse.session(tenant="reporting", constraint=sla_constraint(20.0))

    print("Running a recurring reporting workload (24 queries)...")
    requests = []
    t = 0.0
    for i in range(8):
        for template in ("q5_local_supplier", "q12_shipmode", "q14_promo_effect"):
            requests.append(
                QueryRequest(
                    sql=instantiate(template, seed=i),
                    template=template,
                    at_time=t,
                    simulate=(i < 2),  # simulate a few; estimates for the rest
                )
            )
            t += 450.0
    session.submit_many(requests)
    print(
        f"tenant '{session.tenant}' spent ${session.dollars_spent:.4f} across "
        f"{len(session.logs)} logged queries"
    )

    caches = warehouse.describe_caches()
    skeleton = caches["skeleton_cache"]
    print(
        f"planning caches: skeleton level served {skeleton['hits']} of the "
        f"{skeleton['hits'] + skeleton['misses']} literal-varying plans "
        f"({skeleton['hit_rate']:.0%} hit rate) without re-running join "
        "ordering"
    )

    print("\n=== advisor proposals (What-If dollar reports) ===")
    proposals = warehouse.run_tuning_cycle(apply=True)
    print(proposals.describe())

    applied = [r for r in proposals.accepted if r.kind == "materialized-view"]
    if applied:
        mv_name = applied[0].action_name
        template = mv_name.removeprefix("mv_")
        print(f"\n=== verifying {mv_name} answers the {template} family ===")
        from repro.engine.local_executor import LocalExecutor
        from repro.optimizer.dag_planner import DagPlanner
        from repro.tuning.mv import mv_candidate_from_query, try_rewrite

        bound = warehouse.binder.bind_sql(instantiate(template, seed=99))
        candidate = mv_candidate_from_query(bound, warehouse.catalog, name=mv_name)
        rewritten = try_rewrite(bound, candidate)
        executor = LocalExecutor(database)
        planner = DagPlanner(warehouse.catalog)
        original = executor.execute(planner.plan(bound)).batch
        from_view = executor.execute(planner.plan(rewritten)).batch
        first_metric = bound.select_names[-1]
        same = np.allclose(
            np.sort(original.column(first_metric)),
            np.sort(from_view.column(first_metric)),
        )
        print(
            f"rows: base-tables={original.num_rows}, via-MV={from_view.num_rows}; "
            f"metric '{first_metric}' identical: {same}"
        )


if __name__ == "__main__":
    main()
