"""§3.3 demo: the DOP monitor recovering from cardinality misestimates.

A join query is planned against optimizer estimates, then executed in the
distributed simulator where the true cardinality is 6x larger.  The
static plan blows through its SLA; the pipeline-granular DOP monitor
observes the deviation at run time, resizes the affected pipelines, and
lands the query near the SLA.

Both runs go through one warehouse Session: the same frozen QueryRequest
resubmitted with a different scaling ``policy`` (and the hidden truth
injected via ``truth=``), so the comparison is exactly the serving path.

Run:  python examples/dynamic_resizing.py
"""

from repro import CostIntelligentWarehouse, QueryRequest, synthetic_tpch_catalog
from repro.dop import sla_constraint
from repro.sim.distsim import SimConfig
from repro.util.tables import TextTable

SQL = (
    "SELECT count(*) AS c FROM orders, lineitem "
    "WHERE o_orderkey = l_orderkey AND o_totalprice > 200000"
)
SLA = 36.0


def main() -> None:
    catalog = synthetic_tpch_catalog(100.0)
    warehouse = CostIntelligentWarehouse(
        catalog=catalog, sim_config=SimConfig(seed=17)
    )
    session = warehouse.session(
        tenant="resizing-demo", constraint=sla_constraint(SLA)
    )

    # Plan once through the serving path to see what the optimizer
    # believes; the plan cache serves the same choice to both runs.
    _, choice = session.plan(SQL)
    dop_plan = choice.dop_plan
    print(f"Static plan (believes estimates): {dop_plan.describe()}\n")

    # The optimizer's cardinality estimates are 6x too low.
    truth = {
        p.ops[0].node.node_id: float(p.ops[0].node.est_rows) * 6.0
        for p in choice.dag
    }

    request = QueryRequest(sql=SQL, truth=truth, template="resizing")
    table = TextTable(
        ["policy", "latency (s)", f"SLA {SLA}s", "cost ($)", "resizes"],
        title="True cardinalities are 6x the estimates",
    )
    for label, policy in (
        ("static plan", "static"),
        ("DOP monitor (§3.3)", "dop-monitor"),
    ):
        outcome = session.submit(request.replace(policy=policy)).result()
        sim = outcome.sim
        assert sim is not None
        table.add_row(
            [
                label,
                f"{sim.latency:.1f}",
                "met" if sim.latency <= SLA else "MISSED",
                f"{sim.total_dollars:.4f}",
                sim.resize_count,
            ]
        )
    print(table)
    print(
        "\nThe monitor detects the deviation at a progress checkpoint,"
        " resizes only the affected pipelines, and replans the rest."
    )


if __name__ == "__main__":
    main()
