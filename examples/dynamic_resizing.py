"""§3.3 demo: the DOP monitor recovering from cardinality misestimates.

A join query is planned against optimizer estimates, then executed in the
distributed simulator where the true cardinality is 6x larger.  The
static plan blows through its SLA; the pipeline-granular DOP monitor
observes the deviation at run time, resizes the affected pipelines, and
lands the query near the SLA.

Run:  python examples/dynamic_resizing.py
"""

from repro import CostEstimator, synthetic_tpch_catalog
from repro.dop import DopPlanner, sla_constraint
from repro.monitor.policies import PipelineDopMonitor, StaticPolicy
from repro.optimizer.dag_planner import DagPlanner
from repro.plan.pipelines import decompose_pipelines
from repro.sim.distsim import DistributedSimulator, SimConfig
from repro.sql.binder import Binder
from repro.util.tables import TextTable

SQL = (
    "SELECT count(*) AS c FROM orders, lineitem "
    "WHERE o_orderkey = l_orderkey AND o_totalprice > 200000"
)
SLA = 36.0


def main() -> None:
    catalog = synthetic_tpch_catalog(100.0)
    estimator = CostEstimator()
    binder = Binder(catalog)
    plan = DagPlanner(catalog).plan(binder.bind_sql(SQL))
    dag = decompose_pipelines(plan)
    dop_plan = DopPlanner(estimator, max_dop=64).plan(dag, sla_constraint(SLA))
    print(f"Static plan (believes estimates): {dop_plan.describe()}\n")

    # The optimizer's cardinality estimates are 6x too low.
    truth = {
        p.ops[0].node.node_id: float(p.ops[0].node.est_rows) * 6.0 for p in dag
    }
    table = TextTable(
        ["policy", "latency (s)", f"SLA {SLA}s", "cost ($)", "resizes"],
        title="True cardinalities are 6x the estimates",
    )
    for label, policy in (
        ("static plan", StaticPolicy()),
        (
            "DOP monitor (§3.3)",
            PipelineDopMonitor(
                dag, estimator, sla_constraint(SLA), dop_plan.dops,
                planned_latency=dop_plan.estimate.latency,
                planned_durations={
                    pid: p.duration
                    for pid, p in dop_plan.estimate.pipelines.items()
                },
                max_dop=64,
            ),
        ),
    ):
        sim = DistributedSimulator(
            dag, dop_plan.dops, estimator.models,
            truth=truth, planned=dop_plan.estimate,
            policy=policy, config=SimConfig(seed=17),
        )
        result = sim.run()
        table.add_row(
            [
                label,
                f"{result.latency:.1f}",
                "met" if result.latency <= SLA else "MISSED",
                f"{result.total_dollars:.4f}",
                result.resize_count,
            ]
        )
    print(table)
    print(
        "\nThe monitor detects the deviation at a progress checkpoint,"
        " resizes only the affected pipelines, and replans the rest."
    )


if __name__ == "__main__":
    main()
