"""Chaos serving: a Statistics Service outage plus optimizer latency
spikes land mid-workload — and the warehouse keeps serving.

Failure-domain hardening in action, on one seeded fault schedule:

- **Optimizer latency spikes** blow the per-stage optimize deadline.
  Instead of failing the query, serving falls back to degraded mode —
  cached skeleton shapes when the template is warm, else the heuristic
  default plan — and stamps the outcome (``degraded``/``degraded_mode``)
  so the dashboard can see floor-quality plans.  Degraded plans are
  never cached: the next healthy arrival re-optimizes fresh.
- **Transient optimizer blips** are retried with deterministic seeded
  backoff, and every modeled backoff second is metered onto the
  tenant's bill as ``retry_dollars`` — resilience is a workload cost,
  not free.
- **The Statistics Service outage** trips a circuit breaker after three
  straight refresh failures.  While open, frequency forecasts degrade
  to empty (cost-aware retention quietly behaves like LRU) and serving
  never notices.  After the fault clears, a call-counted cooldown lets
  one probe through and the breaker closes again.

Everything is deterministic: the fault schedule is a pure function of
(seed, fault point, invocation), so this script prints the same story
on every run.

Run:  python examples/chaos_serving.py
"""

from repro import (
    CostIntelligentWarehouse,
    QueryRequest,
    ResiliencePolicy,
    RetryPolicy,
    sla_constraint,
)
from repro.testing import FaultPlan, FaultSpec, outage
from repro.workloads.tpch_queries import instantiate
from repro.workloads.tpch_stats import synthetic_tpch_catalog


def request(name: str, seed: int) -> QueryRequest:
    return QueryRequest(
        sql=instantiate(name, seed=seed),
        template=name,
        simulate=False,  # plan + price only: planning is the fault surface here
    )


def breaker_state(warehouse) -> str:
    return warehouse.describe_health()["breakers"]["statsvc"]["state"]


def main() -> None:
    print("Building a stats-only TPC-H warehouse (SF 1) with resilience on...")
    warehouse = CostIntelligentWarehouse(
        catalog=synthetic_tpch_catalog(1.0),
        retention_policy="cost-aware",  # reads the statsvc forecasts
        resilience=ResiliencePolicy(
            retry=RetryPolicy(max_attempts=3, seed=42),
            stage_deadline_s={"optimize": 0.5},  # latency spikes blow this
        ),
    )
    session = warehouse.session(tenant="analytics", constraint=sla_constraint(15.0))
    templates = ["q1_pricing_summary", "q6_revenue_forecast", "q5_local_supplier"]

    # --- Phase 1: healthy traffic warms the caches and the stats log.
    for seed in range(1, 5):
        for name in templates:
            handle = session.submit(request(name, seed))
            assert handle.result().degraded is False
    warehouse.frequency.invalidate()
    healthy_rates = warehouse.frequency.family_rates()
    print(
        f"healthy: {len(templates) * 4} queries served, "
        f"{len(healthy_rates)} template families forecast, "
        f"statsvc breaker {breaker_state(warehouse)}\n"
    )

    # --- Phase 2: the faults land mid-workload.
    faults = FaultPlan(
        [
            # Every other optimize stalls 2s (vs the 0.5s stage deadline)
            # and ~1 in 4 throws a retryable transient blip.
            FaultSpec(
                point="optimize", error_rate=0.25, latency_rate=0.5, latency_s=2.0
            ),
            # The Statistics Service goes fully dark.
            outage("statsvc"),
        ],
        seed=42,
    )
    warehouse.inject_faults(faults)
    print(f"injecting: {faults.describe()}")

    # The outage trips the breaker after three straight refresh failures;
    # forecasts degrade to empty and retention quietly falls back to LRU.
    for _ in range(3):
        warehouse.frequency.invalidate()
        warehouse.frequency.family_rates()
    print(
        f"statsvc breaker {breaker_state(warehouse)}, "
        f"forecasts degraded to {warehouse.frequency.family_rates()}"
    )

    print("\n=== outcomes under fault injection ===")
    outcomes = []
    for seed in range(5, 11):
        handle = session.submit(request(templates[seed % len(templates)], seed))
        outcome = handle.result()
        outcomes.append(outcome)
        mode = outcome.degraded_mode or "-"
        print(
            f"  #{outcome.record.query_id:<3} {handle.request.template:<22} "
            f"[{handle.state.value}] retries={handle.retries} "
            f"degraded={str(outcome.degraded):<5} mode={mode}"
        )
    assert all(o is not None for o in outcomes), "chaos must never fail the batch"
    assert any(o.degraded for o in outcomes), "latency spikes should degrade some plans"

    bill = warehouse.billing["analytics"]
    health = warehouse.describe_health()
    print(
        f"\nretries {health['resilience']['retries']}, "
        f"retry dollars ${bill.retry_dollars:.4f} (metered onto the bill), "
        f"degraded queries {health['resilience']['degraded_queries']}, "
        f"faults fired {health['faults']['fired']}"
    )

    # --- Phase 3: the fault clears; the breaker cools down and closes.
    warehouse.inject_faults(None)
    for _ in range(warehouse.statsvc_breaker.cooldown_calls + 1):
        warehouse.frequency.invalidate()
        recovered = warehouse.frequency.family_rates()
    print(
        f"\nrecovered: statsvc breaker {breaker_state(warehouse)}, "
        f"{len(recovered)} template families forecast again"
    )
    assert breaker_state(warehouse) == "closed"

    # Degraded plans were never cached: the same template re-optimizes
    # fresh and serves at full quality immediately.
    handle = session.submit(request(templates[0], seed=99))
    outcome = handle.result()
    print(f"post-chaos submit: degraded={outcome.degraded} (full quality restored)")
    assert not outcome.degraded


if __name__ == "__main__":
    main()
