"""Crash recovery: the process dies mid-tuning-apply — and restarts
into a bit-identical warehouse.

Crash-consistent warehouse state in action, on one deterministic kill:

- Every authoritative state transition — a served query with its
  billing delta, an admission verdict, a tuning lifecycle edge — is
  written to a **write-ahead journal** before it is applied in memory,
  with periodic checkpoints bounding replay.
- A tuning apply journals its **undo snapshot before touching the
  catalog**, and its commit record only after the mutation succeeds.
  Killing the process between the two leaves the catalog half-mutated
  and the recommendation in-doubt.
- ``CostIntelligentWarehouse.recover(journal)`` restores the last
  checkpoint, replays the tail, and resolves the in-doubt apply: the
  commit record never landed, so the journaled undo snapshot rolls the
  catalog mutation back. No recommendation is ever left ``applying``.
- The resumed workload then re-applies the tuning action and finishes —
  and the final bills are **bitwise equal** to a run that never
  crashed: no lost charge, no double charge.

The kill is simulated by ``kill("crash_pre_commit")``, a one-shot
fault that raises a ``BaseException`` no serving-layer handler can
swallow — the in-memory warehouse is simply abandoned, exactly like a
process death; only the journal and the (durable) catalog survive.

Run:  python examples/crash_recovery.py
"""

from repro import CostIntelligentWarehouse, QueryRequest, sla_constraint
from repro.core import WriteAheadJournal
from repro.testing import FaultPlan, SimulatedCrashError, kill
from repro.workloads.tpch_stats import synthetic_tpch_catalog

SLA = sla_constraint(20.0)
T_JOIN = (
    "SELECT n_name, sum(c_acctbal) AS bal, count(*) AS cnt "
    "FROM customer, nation WHERE c_nationkey = n_nationkey "
    "AND n_regionkey = {v} GROUP BY n_name"
)
STEPS = [("acme", 0), ("bolt", 1), ("acme", 2), ("bolt", 3), ("acme", 0)]


def serve(warehouse, start: int, stop: int) -> None:
    for index, (tenant, v) in enumerate(STEPS[start:stop], start=start):
        session = warehouse.session(tenant=tenant, constraint=SLA)
        session.submit(
            QueryRequest(
                sql=T_JOIN.format(v=v), template="q5ish", at_time=10.0 * index
            )
        ).result()


def apply_mv(warehouse) -> str:
    recs = [
        r
        for r in warehouse.tuning.propose()
        if r.action.kind == "materialized-view"
    ]
    rec = recs[0]
    if not rec.accepted:
        warehouse.tuning.accept(rec)
    warehouse.tuning.apply(rec)
    return rec.action.name


def run_to_completion(warehouse) -> None:
    """Run — or, after recovery, *resume* — the workload: progress is
    read back from the recovered log and durable tuning records."""
    done = len(warehouse.logs)
    if done < 3:
        serve(warehouse, done, 3)
        done = 3
    if not any(
        d.state == "applied" for d in warehouse._durable_tuning.values()
    ):
        apply_mv(warehouse)
    serve(warehouse, done, len(STEPS))


def bills(warehouse) -> dict:
    return {t: b.ledger_snapshot() for t, b in sorted(warehouse.billing.items())}


def main() -> None:
    print("Reference run (never crashes) on its own catalog...")
    reference = CostIntelligentWarehouse(
        catalog=synthetic_tpch_catalog(1.0), journal=WriteAheadJournal()
    )
    run_to_completion(reference)
    totals = {
        t: round(b.total_dollars, 6) for t, b in sorted(reference.billing.items())
    }
    print(
        f"reference: {len(reference.logs)} queries, "
        f"{len(reference._applied_mvs)} MV applied, bills {totals}"
    )

    # --- The crashing run: same workload, journaled, killed mid-apply.
    print("\nJournaled run with kill('crash_pre_commit') armed...")
    catalog = synthetic_tpch_catalog(1.0)  # durable storage: survives
    journal = WriteAheadJournal(checkpoint_every=4)  # survives too
    doomed = CostIntelligentWarehouse(catalog=catalog, journal=journal)
    doomed.inject_faults(FaultPlan([kill("crash_pre_commit")]))
    try:
        run_to_completion(doomed)
        raise AssertionError("the kill must fire")
    except SimulatedCrashError as crash:
        print(f"process died at {crash.point!r} (invocation {crash.invocation})")

    stranded = [
        d for d in doomed._durable_tuning.values() if d.state == "applying"
    ]
    mv_name = stranded[0].name
    print(
        f"at death: {len(doomed.logs)} queries served, recommendation "
        f"#{stranded[0].rec_id} stranded in {stranded[0].state!r}, "
        f"catalog half-mutated (MV registered: "
        f"{catalog.has_view(mv_name) or catalog.has_table(mv_name)})"
    )

    # --- Restart: recover from the journal over the surviving catalog.
    print("\nRecovering from the journal...")
    warehouse = CostIntelligentWarehouse.recover(journal, catalog=catalog)
    report = warehouse.last_recovery
    print(report.describe())
    durable = warehouse._durable_tuning[stranded[0].rec_id]
    print(
        f"in-doubt apply resolved {durable.resolution!r}: state "
        f"{durable.state!r}, catalog mutation undone (MV registered: "
        f"{catalog.has_view(mv_name) or catalog.has_table(mv_name)})"
    )
    assert durable.state == "failed" and durable.resolution == "back"
    assert not catalog.has_view(mv_name) and not catalog.has_table(mv_name)
    assert not any(d.in_doubt for d in warehouse._durable_tuning.values())

    # --- Resume: finish the tuning apply and the remaining queries.
    print("\nResuming the workload on the recovered warehouse...")
    run_to_completion(warehouse)
    print(
        f"resumed: {len(warehouse.logs)} queries total, "
        f"{len(warehouse._applied_mvs)} MV applied"
    )

    # --- The punchline: exactly-once billing, bit-identical plans.
    assert bills(warehouse) == bills(reference), "billing must be exactly-once"
    for _, v in STEPS:
        sql = T_JOIN.format(v=v)
        ours = warehouse.plan(sql, SLA)[1]
        theirs = reference.plan(sql, SLA)[1]
        assert ours.join_tree.describe() == theirs.join_tree.describe()
        assert ours.dop_plan.dops == theirs.dop_plan.dops
    durability = warehouse.describe_health()["durability"]
    print(
        "\nbills bitwise equal to the uncrashed run, plans bit-identical; "
        f"journal at {durability['journal_records']} records, "
        f"checkpoint #{durability['last_checkpoint_id']}"
    )


if __name__ == "__main__":
    main()
