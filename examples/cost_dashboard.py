"""Cost dashboard: from a fleet-wide dollar figure down to the one
operator worth optimizing.

Fleet-scale cost observability in action, end to end:

- A multi-tenant workload runs on virtual time while a **scheduled
  snapshot collector** (enabled with one ``enable_collection`` call,
  off by default) folds the statistics log into a per-tenant cost
  snapshot every few queries — building the spend-over-time series a
  FinOps dashboard plots.
- Every snapshot carries an operator-level decomposition in **integral
  ledger units**, so the drill-down navigator can walk tenant →
  template family → pipeline → operator with each level re-partitioning
  the one above *exactly*: ``reconcile()`` asserts the leaves sum
  bitwise to each tenant's ``TenantBill``, retries and background spend
  included.
- The same registry behind ``describe_health()``/``describe_caches()``
  exports everything as Prometheus text or JSON via
  ``warehouse.observe()`` — one entry point for humans, scrapers, and
  scripts alike.

Run:  python examples/cost_dashboard.py
"""

from repro import CostIntelligentWarehouse, QueryRequest, sla_constraint
from repro.obsvc.drilldown import DrillDownNavigator
from repro.util.units import fmt_dollars, from_ledger_units
from repro.workloads.tpch_stats import synthetic_tpch_catalog

SLA = sla_constraint(20.0)
T_ORDERS = "SELECT count(*) AS c FROM orders WHERE o_totalprice > {v}"
T_JOIN = (
    "SELECT n_name, sum(c_acctbal) AS bal, count(*) AS cnt "
    "FROM customer, nation WHERE c_nationkey = n_nationkey "
    "AND n_regionkey = {v} GROUP BY n_name"
)
#: Three tenants with different appetites: "acme" hammers the join
#: report, "bolt" mixes, "cleo" only runs the cheap scan.
WORKLOAD = [
    ("acme", "q5ish", T_JOIN, 0),
    ("bolt", "orders_scan", T_ORDERS, 100_000),
    ("acme", "q5ish", T_JOIN, 1),
    ("cleo", "orders_scan", T_ORDERS, 140_000),
    ("acme", "q5ish", T_JOIN, 2),
    ("bolt", "q5ish", T_JOIN, 3),
    ("acme", "orders_scan", T_ORDERS, 120_000),
    ("bolt", "q5ish", T_JOIN, 0),
    ("acme", "q5ish", T_JOIN, 1),
    ("cleo", "orders_scan", T_ORDERS, 160_000),
    ("acme", "q5ish", T_JOIN, 2),
    ("bolt", "orders_scan", T_ORDERS, 110_000),
]


def main() -> None:
    warehouse = CostIntelligentWarehouse(catalog=synthetic_tpch_catalog(1.0))

    # One call arms the dashboard: every 3rd served query the collector
    # folds the new log records into a per-tenant cost snapshot (virtual
    # time and ledger units only — observation never perturbs serving).
    warehouse.enable_collection(cadence_queries=3)

    print(f"Serving {len(WORKLOAD)} queries from 3 tenants...")
    sessions = {}
    for index, (tenant, template, sql, v) in enumerate(WORKLOAD):
        if tenant not in sessions:
            sessions[tenant] = warehouse.session(tenant=tenant, constraint=SLA)
        sessions[tenant].submit(
            QueryRequest(
                sql=sql.format(v=v), template=template, at_time=15.0 * index
            )
        ).result()

    # --- Spend over virtual time, per tenant (the dashboard's chart).
    history = warehouse.cost_history
    print(f"\ncollected {len(history)} scheduled snapshots:")
    for tenant in history.tenants():
        series = ", ".join(
            f"t={clock:.0f}s {fmt_dollars(from_ledger_units(units))}"
            for clock, units in history.series(tenant)
        )
        print(f"  {tenant:>5}: {series}")

    # --- Drill down: fleet total -> the one operator to optimize.
    final = warehouse.collector.collect_now()  # fold the tail on demand
    navigator = DrillDownNavigator(final)
    print(f"\n{navigator.describe(top=2)}")

    tenant, template, pipeline, operator, units = navigator.costliest_path()
    print(
        f"\ncostliest path: {tenant} -> {template} -> {pipeline} -> "
        f"{operator} = {fmt_dollars(from_ledger_units(units))}"
    )

    # --- The books balance, bitwise: operator leaves re-partition each
    # tenant's ledger-unit bill exactly — no float drift, no stray unit.
    totals = navigator.reconcile()
    for name, total_units in sorted(totals.items()):
        assert total_units == warehouse.billing[name].total_units
    print(f"reconciled {len(totals)} tenants exactly (ledger units, bitwise)")

    # --- Exporters: one unified entry point for scrapers and scripts.
    prometheus = warehouse.observe("prometheus")
    interesting = [
        line
        for line in prometheus.splitlines()
        if line.startswith(("repro_tenant_cost", "repro_cost_snapshots"))
    ]
    print("\nPrometheus scrape (excerpt):")
    for line in interesting:
        print(f"  {line}")
    view = warehouse.observe()
    print(
        f"\nobserve() view: {sorted(view)} — "
        f"{len(view['metrics'])} metrics exported, "
        f"{len(view['cost_history']['snapshots'])} snapshots"
    )


if __name__ == "__main__":
    main()
