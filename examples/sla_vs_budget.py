"""The two user paradigms of §1: latency SLAs vs fixed budgets.

Plans the same 6-table join (TPC-H Q5 shape) over a 100-scale-factor
statistics-only catalog under a sweep of SLAs and budgets, printing how
the optimizer slides along the cost-performance trade-off — the Figure-2
interaction, driven entirely by constraints instead of cluster sizes.

Run:  python examples/sla_vs_budget.py
"""

from repro import BiObjectiveOptimizer, Binder, CostEstimator, synthetic_tpch_catalog
from repro.dop import budget_constraint, sla_constraint
from repro.util.tables import TextTable
from repro.workloads import instantiate


def main() -> None:
    catalog = synthetic_tpch_catalog(
        100.0, cluster_keys={"lineitem": "l_shipdate", "orders": "o_orderdate"}
    )
    binder = Binder(catalog)
    optimizer = BiObjectiveOptimizer(catalog, CostEstimator(), max_dop=128)
    bound = binder.bind_sql(instantiate("q5_local_supplier", seed=1))
    print("Query: TPC-H Q5 shape over a 600M-row lineitem (SF 100)\n")

    table = TextTable(
        ["constraint", "feasible", "latency (s)", "cost ($)", "DOPs"],
        title="'Deliver on time, minimize my bill'  /  'Here is my budget'",
    )
    for sla in (60.0, 20.0, 8.0, 5.0):
        choice = optimizer.optimize(bound, sla_constraint(sla))
        estimate = choice.dop_plan.estimate
        table.add_row(
            [
                f"SLA {sla:5.1f}s",
                "yes" if choice.feasible else "NO (best effort)",
                f"{estimate.latency:.2f}",
                f"{estimate.total_dollars:.4f}",
                str(sorted(choice.dop_plan.dops.values())),
            ]
        )
    for budget in (0.002, 0.01, 0.05):
        choice = optimizer.optimize(bound, budget_constraint(budget))
        estimate = choice.dop_plan.estimate
        table.add_row(
            [
                f"budget ${budget:.3f}",
                "yes" if choice.feasible else "NO",
                f"{estimate.latency:.2f}",
                f"{estimate.total_dollars:.4f}",
                str(sorted(choice.dop_plan.dops.values())),
            ]
        )
    print(table)
    print(
        "\nTighter SLAs buy latency with dollars; bigger budgets buy"
        " dollars' worth of latency — no T-shirt menu involved."
    )


if __name__ == "__main__":
    main()
