"""The two user paradigms of §1: latency SLAs vs fixed budgets.

Plans the same 6-table join (TPC-H Q5 shape) over a 100-scale-factor
statistics-only catalog under a sweep of SLAs and budgets, printing how
the optimizer slides along the cost-performance trade-off — the Figure-2
interaction, driven entirely by constraints instead of cluster sizes.
Each sweep point is a frozen QueryRequest submitted through one Session
(planning only: ``simulate=False``), so the whole batch also lands in
the session's log and billing views.

Run:  python examples/sla_vs_budget.py
"""

from repro import CostIntelligentWarehouse, QueryRequest, synthetic_tpch_catalog
from repro.dop import budget_constraint, sla_constraint
from repro.util.tables import TextTable
from repro.workloads import instantiate


def main() -> None:
    catalog = synthetic_tpch_catalog(
        100.0, cluster_keys={"lineitem": "l_shipdate", "orders": "o_orderdate"}
    )
    warehouse = CostIntelligentWarehouse(catalog=catalog, max_dop=128)
    session = warehouse.session(tenant="sweep", template_namespace="figure2")
    sql = instantiate("q5_local_supplier", seed=1)
    print("Query: TPC-H Q5 shape over a 600M-row lineitem (SF 100)\n")

    constraints = [sla_constraint(s) for s in (60.0, 20.0, 8.0, 5.0)]
    constraints += [budget_constraint(b) for b in (0.002, 0.01, 0.05)]
    handles = session.submit_many(
        [
            QueryRequest(sql=sql, constraint=constraint, simulate=False)
            for constraint in constraints
        ]
    )

    table = TextTable(
        ["constraint", "feasible", "latency (s)", "cost ($)", "DOPs"],
        title="'Deliver on time, minimize my bill'  /  'Here is my budget'",
    )
    for constraint, handle in zip(constraints, handles):
        choice = handle.result().choice
        estimate = choice.dop_plan.estimate
        label = (
            f"SLA {constraint.latency_sla:5.1f}s"
            if constraint.is_sla
            else f"budget ${constraint.budget:.3f}"
        )
        table.add_row(
            [
                label,
                "yes" if choice.feasible else "NO (best effort)",
                f"{estimate.latency:.2f}",
                f"{estimate.total_dollars:.4f}",
                str(sorted(choice.dop_plan.dops.values())),
            ]
        )
    print(table)
    print(
        "\nTighter SLAs buy latency with dollars; bigger budgets buy"
        " dollars' worth of latency — no T-shirt menu involved."
        f"\n(One plan per constraint; the session logged {len(session.logs)}"
        " submissions under the 'figure2' namespace.)"
    )


if __name__ == "__main__":
    main()
