"""Process-sharded serving: warm planner worker pools, crash included.

The threaded scheduler interleaves CPU-bound planning on one core; the
sharded path stages it in warm, long-lived worker *processes* keyed by
query template, while every authoritative effect — admission, billing,
statistics logs, the journal — stays in the coordinator.  This demo
drives identical multi-tenant traffic through both paths and shows:

- **Bit-identical observability.**  Plans, per-tenant ledger bills, and
  admission verdicts from the sharded warehouse equal the threaded
  baseline exactly — process boundaries change *where* planning runs,
  never *what* is served.
- **Warm worker caches.**  Literal-varying repeats of a template land
  on the same worker (template affinity), whose private skeleton cache
  skips join-order DP exactly like the coordinator's own.
- **Crash recovery, exactly-once.**  A seeded ``worker_crash`` fault
  kills a worker right after a dispatch — the hardest window, the task
  is in flight and dies with the process.  The coordinator restarts the
  worker warm, re-stages its in-flight tasks, and bills each query
  once: the crashed run's ledger still matches the threaded baseline
  bit for bit, with zero retry dollars.

Run:  python examples/sharded_serving.py
"""

from repro import (
    CostIntelligentWarehouse,
    QueryRequest,
    budget_constraint,
    sla_constraint,
)
from repro.testing import FaultPlan, FaultSpec
from repro.workloads.tpch_queries import instantiate
from repro.workloads.tpch_stats import synthetic_tpch_catalog

TEMPLATES = ["q1_pricing_summary", "q6_revenue_forecast", "q5_local_supplier"]
TENANTS = {
    "reporting": sla_constraint(15.0),
    "adhoc": budget_constraint(0.05),
}


def fresh_warehouse() -> CostIntelligentWarehouse:
    return CostIntelligentWarehouse(catalog=synthetic_tpch_catalog(1.0))


def drive(warehouse: CostIntelligentWarehouse) -> list:
    """Two literal-varying batches per tenant; returns every outcome."""
    outcomes = []
    for tenant, constraint in TENANTS.items():
        session = warehouse.session(tenant=tenant, constraint=constraint)
        clock = 0.0
        for batch_seeds in (range(1, 5), range(5, 9)):
            requests = []
            for seed in batch_seeds:
                for name in TEMPLATES:
                    requests.append(
                        QueryRequest(
                            sql=instantiate(name, seed=seed),
                            at_time=clock,
                            simulate=False,
                        )
                    )
                    clock += 60.0
            handles = session.submit_many(requests, max_workers=4)
            outcomes.extend(handle.result() for handle in handles)
    return outcomes


def bills(warehouse: CostIntelligentWarehouse) -> dict:
    return {t: b.ledger_snapshot() for t, b in warehouse.billing.items()}


def main() -> None:
    print("Threaded baseline (GIL-interleaved planning)...")
    threaded = fresh_warehouse()
    baseline = [(o.sql, o.record.dollars) for o in drive(threaded)]
    print(f"  served {len(baseline)} queries across {len(TENANTS)} tenants\n")

    print("Sharded warehouse: 4 warm planner worker processes...")
    sharded = fresh_warehouse()
    sharded.enable_sharding(workers=4)
    try:
        served = [(o.sql, o.record.dollars) for o in drive(sharded)]
        pool = sharded.worker_pool
        print(f"  {pool.describe()}")
        assert served == baseline, "sharded plans/bills diverged"
        assert bills(sharded) == bills(threaded), "ledger bills diverged"
        print("  plans and per-tenant ledger bills are bit-identical\n")
    finally:
        sharded.disable_sharding()

    print("Crash drill: kill a worker right after a dispatch...")
    crashed = fresh_warehouse()
    crashed.inject_faults(
        FaultPlan(
            [FaultSpec(point="worker_crash", error_rate=1.0, after=2, limit=2)],
            seed=7,
        )
    )
    crashed.enable_sharding(workers=4)
    try:
        served = [(o.sql, o.record.dollars) for o in drive(crashed)]
        pool = crashed.worker_pool
        print(f"  {pool.describe()}")
        assert pool.injected_kills == 2 and pool.restarts >= 1
        assert served == baseline, "crashed run diverged from baseline"
        assert bills(crashed) == bills(threaded), "crash perturbed the bills"
        assert crashed.resilience_stats.retries == 0
        print(
            "  in-flight tasks re-staged on warm restarts; every query "
            "billed exactly once,\n  ledger still bit-identical to the "
            "threaded baseline — crashes are free for tenants"
        )
    finally:
        crashed.disable_sharding()


if __name__ == "__main__":
    main()
